//! Per-core hardware-counter equivalents.
//!
//! The paper reads PMU counters (L3 misses, execution time) to compute
//! bandwidth via Eq. 1: `BW = line_bytes * misses / time`. [`CoreCounters`]
//! exposes exactly those quantities for every simulated core, with zero
//! measurement perturbation.

use serde::{Deserialize, Serialize};

/// Event counts for one core over one run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreCounters {
    /// Retired load operations.
    pub loads: u64,
    /// Retired store operations.
    pub stores: u64,
    /// Cycles spent in `Compute` ops.
    pub compute_cycles: u64,
    /// L1D hits / misses.
    pub l1_hits: u64,
    pub l1_misses: u64,
    /// L2 hits / misses (L2 accesses = L1 misses).
    pub l2_hits: u64,
    pub l2_misses: u64,
    /// L3 hits / misses (L3 accesses = L2 misses).
    pub l3_hits: u64,
    pub l3_misses: u64,
    /// Demand lines this core fetched from DRAM (== l3_misses).
    pub dram_demand_lines: u64,
    /// Lines this core's prefetcher fetched from DRAM.
    pub dram_prefetch_lines: u64,
    /// Prefetch requests issued (including those satisfied by the L3).
    pub prefetches_issued: u64,
    /// Prefetches dropped due to channel backlog.
    pub prefetches_dropped: u64,
    /// Lines invalidated out of this core's private caches by inclusive-L3
    /// evictions caused by *any* core on the socket.
    pub back_invalidations: u64,
    /// TLB hits / misses (0 when the TLB is disabled).
    pub tlb_hits: u64,
    pub tlb_misses: u64,
    /// Lines invalidated out of this core's private caches by another
    /// core's store (MESI within-socket coherence).
    pub coherence_invalidations: u64,
    /// Stores by this core that had to invalidate other sharers first.
    pub coherence_upgrades: u64,
    /// Cycles the core spent stalled waiting for memory.
    pub stall_cycles: u64,
    /// Cycles spent on `RemoteXfer` (network) ops.
    pub net_cycles: u64,
    /// Cycles spent parked at BSP barriers.
    pub barrier_cycles: u64,
    /// The core's clock when its stream finished (or was stopped).
    pub cycles: u64,
}

impl CoreCounters {
    /// Total memory operations.
    pub fn accesses(&self) -> u64 {
        self.loads + self.stores
    }

    /// L3 miss rate: misses / L3 accesses, the counter ratio the paper's
    /// validation (Figs. 5–6) inverts. Returns 0 when the L3 was not
    /// accessed.
    pub fn l3_miss_rate(&self) -> f64 {
        let acc = self.l3_hits + self.l3_misses;
        if acc == 0 {
            0.0
        } else {
            self.l3_misses as f64 / acc as f64
        }
    }

    /// L2 miss rate.
    pub fn l2_miss_rate(&self) -> f64 {
        let acc = self.l2_hits + self.l2_misses;
        if acc == 0 {
            0.0
        } else {
            self.l2_misses as f64 / acc as f64
        }
    }

    /// Demand + prefetch bytes this core pulled from DRAM.
    pub fn dram_bytes(&self, line_bytes: u32) -> u64 {
        (self.dram_demand_lines + self.dram_prefetch_lines) * line_bytes as u64
    }

    /// The paper's Eq. 1: bandwidth used, from miss counters and time.
    ///
    /// `BW = line_bytes * #misses / execution_time`
    pub fn bandwidth_gbs(&self, line_bytes: u32, freq_ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let seconds = self.cycles as f64 / (freq_ghz * 1e9);
        self.dram_bytes(line_bytes) as f64 / seconds / 1e9
    }

    /// Counters accumulated since an earlier snapshot of the same core
    /// (the PMU "read, reset, read again" idiom). `cycles` becomes the
    /// elapsed cycles between the two snapshots.
    ///
    /// Counters are monotone, so `earlier` must really be the earlier
    /// snapshot. Swapped arguments are a caller bug: debug builds panic,
    /// release builds saturate to zero instead of wrapping to near-`u64::MAX`
    /// garbage.
    pub fn delta_since(&self, earlier: &CoreCounters) -> CoreCounters {
        macro_rules! sub {
            ($f:ident) => {{
                debug_assert!(
                    self.$f >= earlier.$f,
                    concat!(
                        "delta_since: snapshots swapped (field `",
                        stringify!($f),
                        "` went backwards: {} -> {})"
                    ),
                    earlier.$f,
                    self.$f,
                );
                self.$f.saturating_sub(earlier.$f)
            }};
        }
        CoreCounters {
            loads: sub!(loads),
            stores: sub!(stores),
            compute_cycles: sub!(compute_cycles),
            l1_hits: sub!(l1_hits),
            l1_misses: sub!(l1_misses),
            l2_hits: sub!(l2_hits),
            l2_misses: sub!(l2_misses),
            l3_hits: sub!(l3_hits),
            l3_misses: sub!(l3_misses),
            dram_demand_lines: sub!(dram_demand_lines),
            dram_prefetch_lines: sub!(dram_prefetch_lines),
            prefetches_issued: sub!(prefetches_issued),
            prefetches_dropped: sub!(prefetches_dropped),
            back_invalidations: sub!(back_invalidations),
            tlb_hits: sub!(tlb_hits),
            tlb_misses: sub!(tlb_misses),
            coherence_invalidations: sub!(coherence_invalidations),
            coherence_upgrades: sub!(coherence_upgrades),
            stall_cycles: sub!(stall_cycles),
            net_cycles: sub!(net_cycles),
            barrier_cycles: sub!(barrier_cycles),
            cycles: sub!(cycles),
        }
    }

    /// Merge another counter set into this one (for aggregating ranks).
    pub fn merge(&mut self, o: &CoreCounters) {
        self.loads += o.loads;
        self.stores += o.stores;
        self.compute_cycles += o.compute_cycles;
        self.l1_hits += o.l1_hits;
        self.l1_misses += o.l1_misses;
        self.l2_hits += o.l2_hits;
        self.l2_misses += o.l2_misses;
        self.l3_hits += o.l3_hits;
        self.l3_misses += o.l3_misses;
        self.dram_demand_lines += o.dram_demand_lines;
        self.dram_prefetch_lines += o.dram_prefetch_lines;
        self.prefetches_issued += o.prefetches_issued;
        self.prefetches_dropped += o.prefetches_dropped;
        self.back_invalidations += o.back_invalidations;
        self.tlb_hits += o.tlb_hits;
        self.tlb_misses += o.tlb_misses;
        self.coherence_invalidations += o.coherence_invalidations;
        self.coherence_upgrades += o.coherence_upgrades;
        self.stall_cycles += o.stall_cycles;
        self.net_cycles += o.net_cycles;
        self.barrier_cycles += o.barrier_cycles;
        self.cycles = self.cycles.max(o.cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rates() {
        let c = CoreCounters {
            l3_hits: 25,
            l3_misses: 75,
            l2_hits: 50,
            l2_misses: 100,
            ..Default::default()
        };
        assert!((c.l3_miss_rate() - 0.75).abs() < 1e-12);
        assert!((c.l2_miss_rate() - 100.0 / 150.0).abs() < 1e-12);
        assert_eq!(CoreCounters::default().l3_miss_rate(), 0.0);
    }

    #[test]
    fn eq1_bandwidth() {
        // 1e9 lines of 64B in 2.6e9 cycles @2.6GHz = 64 GB/s.
        let c = CoreCounters {
            dram_demand_lines: 1_000_000_000,
            cycles: 2_600_000_000,
            ..Default::default()
        };
        let bw = c.bandwidth_gbs(64, 2.6);
        assert!((bw - 64.0).abs() < 1e-9, "bw={bw}");
    }

    #[test]
    fn delta_since_subtracts_fieldwise() {
        let early = CoreCounters {
            loads: 10,
            l3_misses: 4,
            cycles: 100,
            ..Default::default()
        };
        let late = CoreCounters {
            loads: 30,
            l3_misses: 9,
            cycles: 450,
            ..Default::default()
        };
        let d = late.delta_since(&early);
        assert_eq!(d.loads, 20);
        assert_eq!(d.l3_misses, 5);
        assert_eq!(d.cycles, 350);
    }

    #[test]
    fn delta_since_rejects_swapped_snapshots() {
        let early = CoreCounters {
            loads: 10,
            cycles: 100,
            ..Default::default()
        };
        let late = CoreCounters {
            loads: 30,
            cycles: 450,
            ..Default::default()
        };
        // Arguments the wrong way round: debug builds assert, release
        // builds saturate to zero instead of wrapping.
        if cfg!(debug_assertions) {
            let r = std::panic::catch_unwind(|| early.delta_since(&late));
            assert!(r.is_err(), "swapped snapshots must trip the debug assert");
        } else {
            let d = early.delta_since(&late);
            assert_eq!(d.loads, 0);
            assert_eq!(d.cycles, 0);
        }
    }

    #[test]
    fn merge_takes_max_cycles_and_sums_events() {
        let mut a = CoreCounters {
            loads: 10,
            cycles: 100,
            ..Default::default()
        };
        let b = CoreCounters {
            loads: 5,
            cycles: 50,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.loads, 15);
        assert_eq!(a.cycles, 100);
    }
}
