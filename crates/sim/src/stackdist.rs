//! Single-pass stack-distance analysis: the whole miss-ratio curve from
//! one traversal of an access trace.
//!
//! The Mattson inclusion property of LRU says a reference hits a
//! fully-associative LRU cache of `C` lines iff its *stack distance* —
//! the number of distinct other lines touched since the previous access
//! to the same line — is below `C`. One pass that records the histogram
//! of stack distances therefore yields the miss rate at **every**
//! capacity at once, where re-simulating would cost one full run per
//! capacity point.
//!
//! The pass is the classic Bennett–Kruskal formulation: a last-access
//! table per line plus a Fenwick tree over access slots counting "most
//! recent access of some line". The distance of an access is then a
//! prefix-sum difference, `O(log n)` per access, `O(n log n)` total.
//!
//! Two sampling hooks support an approximate mode ~10× cheaper:
//!
//! * [`spatial_sample`] filters an existing trace to the lines selected
//!   by a fixed-rate address hash (SHARDS-style spatial sampling). Every
//!   line survives with probability `rate` independent of how hot it is,
//!   so distinct-line counts — and hence stack distances — shrink by the
//!   factor `rate` in expectation.
//! * [`StackDistHistogram::compute`] accepts the line-sampling `rate`
//!   the trace was built with and un-scales distances at evaluation
//!   time: a raw distance `d` among sampled lines estimates a true
//!   distance `d / rate`, so capacity `C` is compared against `C·rate`.
//!
//! Exact mode is `rate = 1.0` and is bit-deterministic: the same trace
//! always produces the same histogram, with no dependence on thread
//! count or iteration order.

use crate::stream::{AccessStream, Op, OP_BATCH};

/// A drained access trace at cache-line granularity: the line id of every
/// load/store, plus the index where the measurement phase begins (the
/// position of the last [`Op::Mark`], mirroring `after_last_mark`).
/// Accesses before `mark` warm the stack but are not counted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineTrace {
    /// Line ids in access order (byte address `>> log2(line_bytes)`).
    pub lines: Vec<u64>,
    /// Index of the first measured access (0 = everything measured).
    pub mark: usize,
}

impl LineTrace {
    /// Drain a stream to completion, keeping only its memory accesses.
    /// `Compute`/`RemoteXfer`/`Barrier` ops are skipped — they never
    /// touch the cache — so one trace serves every compute intensity
    /// that interleaves the same loads.
    pub fn from_stream(stream: &mut dyn AccessStream, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let shift = line_bytes.trailing_zeros();
        let mut lines = Vec::new();
        let mut mark = 0usize;
        let mut buf: Vec<Op> = Vec::with_capacity(OP_BATCH);
        'outer: loop {
            buf.clear();
            stream.next_batch(&mut buf, OP_BATCH);
            if buf.is_empty() {
                break; // defensive: a conforming stream ends with Done
            }
            for op in &buf {
                match *op {
                    Op::Load(a) | Op::Store(a) => lines.push(a >> shift),
                    Op::Mark => mark = lines.len(),
                    Op::Done => break 'outer,
                    _ => {}
                }
            }
        }
        Self { lines, mark }
    }

    /// The measured (post-mark) portion of the trace.
    pub fn measured(&self) -> &[u64] {
        &self.lines[self.mark..]
    }
}

/// Stateless 64-bit mixing hash (the SplitMix64 finalizer) used for
/// spatial sampling: whether a *line* is sampled depends only on its id,
/// never on when it is accessed, which is what makes distinct-line
/// counts scale linearly with the rate.
pub fn spatial_hash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Whether `line` falls in the sampled subset at `rate` (in (0, 1]).
pub fn line_sampled(line: u64, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    spatial_hash(line) <= (rate * u64::MAX as f64) as u64
}

/// SHARDS-style spatial sampling of a trace: keep only accesses to lines
/// whose hash falls under `rate`. Returns the filtered trace plus the
/// *actual* fraction of distinct lines retained (the unbiased scaling
/// factor — more accurate than the nominal rate on small universes).
pub fn spatial_sample(trace: &LineTrace, rate: f64) -> (LineTrace, f64) {
    assert!(rate > 0.0 && rate <= 1.0, "sample rate must be in (0, 1]");
    if rate >= 1.0 {
        return (trace.clone(), 1.0);
    }
    let mut lines = Vec::new();
    let mut mark = 0usize;
    for (i, &l) in trace.lines.iter().enumerate() {
        if i == trace.mark {
            mark = lines.len();
        }
        if line_sampled(l, rate) {
            lines.push(l);
        }
    }
    if trace.mark == trace.lines.len() {
        mark = lines.len();
    }
    let distinct = |it: &[u64]| {
        let mut v: Vec<u64> = it.to_vec();
        v.sort_unstable();
        v.dedup();
        v.len()
    };
    let total = distinct(&trace.lines);
    let kept = distinct(&lines);
    let actual = if total == 0 {
        rate
    } else {
        (kept as f64 / total as f64).max(f64::MIN_POSITIVE)
    };
    (LineTrace { lines, mark }, actual)
}

/// Fenwick tree over access slots (1-based), counting which slots hold
/// the *most recent* access of some line.
struct Fenwick {
    t: Vec<i64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self { t: vec![0; n + 1] }
    }

    fn add(&mut self, mut i: usize, v: i64) {
        while i < self.t.len() {
            self.t[i] += v;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `1..=i`.
    fn prefix(&self, mut i: usize) -> i64 {
        let mut s = 0;
        while i > 0 {
            s += self.t[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// The product of one pass: enough to evaluate the miss rate at *any*
/// capacity. Distances are stored as a suffix-cumulative histogram so
/// each evaluation is O(1).
#[derive(Debug, Clone, PartialEq)]
pub struct StackDistHistogram {
    /// Line-sampling rate of the trace this was computed from (1.0 =
    /// exact). Distances estimate `raw / rate`.
    pub sample_rate: f64,
    /// Measured accesses seen (raw count, in the sampled trace).
    pub measured: u64,
    /// Of which first-touch (infinite-distance) misses.
    pub cold: u64,
    /// Distinct lines in the whole (sampled) trace.
    pub distinct_lines: u64,
    /// `suffix[c]` = measured accesses with raw stack distance ≥ `c`,
    /// for `c` in `0..=distinct_lines` (cold accesses excluded — they
    /// miss at every capacity).
    suffix: Vec<u64>,
}

impl StackDistHistogram {
    /// One Bennett–Kruskal pass over the trace. `rate` is the
    /// line-sampling rate the trace was built with (see
    /// [`spatial_sample`]); pass 1.0 for an unsampled trace.
    pub fn compute(trace: &LineTrace, rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "sample rate must be in (0, 1]");
        let n = trace.lines.len();
        // Dense remap of line ids so the last-access table is a Vec.
        let mut ids: Vec<u64> = trace.lines.clone();
        ids.sort_unstable();
        ids.dedup();
        let u = ids.len();
        let dense = |line: u64| ids.binary_search(&line).expect("line is in the id table");

        const NONE: u32 = u32::MAX;
        assert!(n < NONE as usize, "trace too long for u32 slots");
        let mut last: Vec<u32> = vec![NONE; u];
        let mut bit = Fenwick::new(n);
        let mut counts: Vec<u64> = vec![0; u + 1];
        let mut cold = 0u64;
        let mut measured = 0u64;

        for (t, &line) in trace.lines.iter().enumerate() {
            let id = dense(line);
            let in_measure = t >= trace.mark;
            if in_measure {
                measured += 1;
            }
            match last[id] {
                NONE => {
                    if in_measure {
                        cold += 1;
                    }
                }
                p => {
                    let p = p as usize;
                    // Distinct lines touched strictly between p and t:
                    // active markers in slots (p+1, t], minus none — the
                    // marker for `line` itself sits at slot p+1 and is
                    // excluded by the lower bound.
                    let d = (bit.prefix(t) - bit.prefix(p + 1)) as usize;
                    if in_measure {
                        counts[d] += 1;
                    }
                    bit.add(p + 1, -1);
                }
            }
            bit.add(t + 1, 1);
            last[id] = t as u32;
        }

        // Suffix-accumulate: suffix[c] = Σ_{d ≥ c} counts[d].
        let mut suffix = counts;
        for c in (0..suffix.len() - 1).rev() {
            suffix[c] += suffix[c + 1];
        }
        Self {
            sample_rate: rate,
            measured,
            cold,
            distinct_lines: u as u64,
            suffix,
        }
    }

    /// Miss rate of a fully-associative LRU cache of `capacity_lines`
    /// over the measured phase. A hit needs estimated distance
    /// `d / rate < C`, i.e. raw distance `d < C·rate`. An empty
    /// measurement phase pessimistically reports 1.0.
    pub fn miss_rate_at_lines(&self, capacity_lines: u64) -> f64 {
        if self.measured == 0 {
            return 1.0;
        }
        // Smallest raw distance that still misses: d ≥ C·rate.
        let cutoff = if self.sample_rate >= 1.0 {
            capacity_lines
        } else {
            (capacity_lines as f64 * self.sample_rate).ceil() as u64
        };
        let far = if (cutoff as usize) < self.suffix.len() {
            self.suffix[cutoff as usize]
        } else {
            0
        };
        (self.cold + far) as f64 / self.measured as f64
    }

    /// The whole curve in one call.
    pub fn miss_curve(&self, capacities_lines: &[u64]) -> Vec<f64> {
        capacities_lines
            .iter()
            .map(|&c| self.miss_rate_at_lines(c))
            .collect()
    }

    /// Distribution-free 95% half-width of the sampling error on any
    /// point of the curve: `1.96·√(p(1−p)/n) ≤ 1.96·√(0.25/n)` over the
    /// `n` sampled measured accesses. Zero in exact mode — the pass is
    /// then an exact count, not an estimate. (Distance re-scaling adds
    /// error of the same order; treat this as the scale of the bound,
    /// not a hard guarantee.)
    pub fn max_ci95(&self) -> f64 {
        if self.sample_rate >= 1.0 || self.measured == 0 {
            return 0.0;
        }
        1.96 * (0.25 / self.measured as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    /// Naive oracle: one fully-associative LRU simulation per capacity.
    fn naive_miss_rate(trace: &LineTrace, capacity: usize) -> f64 {
        use std::collections::VecDeque;
        let mut stack: VecDeque<u64> = VecDeque::new();
        let mut misses = 0u64;
        let mut total = 0u64;
        for (i, &l) in trace.lines.iter().enumerate() {
            let hit = stack.iter().position(|&x| x == l);
            let measured = i >= trace.mark;
            if measured {
                total += 1;
            }
            match hit {
                Some(p) => {
                    stack.remove(p);
                }
                None => {
                    if measured {
                        misses += 1;
                    }
                    if capacity == 0 {
                        continue; // nothing ever fits
                    }
                    if stack.len() == capacity {
                        stack.pop_back();
                    }
                }
            }
            if capacity > 0 {
                stack.push_front(l);
            }
        }
        if total == 0 {
            1.0
        } else {
            misses as f64 / total as f64
        }
    }

    fn random_trace(seed: u64, n: usize, universe: u64, mark_frac: f64) -> LineTrace {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let lines = (0..n).map(|_| 7000 + rng.below(universe)).collect();
        LineTrace {
            lines,
            mark: (n as f64 * mark_frac) as usize,
        }
    }

    #[test]
    fn matches_naive_lru_at_every_capacity() {
        for seed in 0..10 {
            let t = random_trace(seed, 600, 40, 0.3);
            let h = StackDistHistogram::compute(&t, 1.0);
            for cap in 0..=45u64 {
                let fast = h.miss_rate_at_lines(cap);
                let slow = naive_miss_rate(&t, cap as usize);
                assert!(
                    (fast - slow).abs() < 1e-12,
                    "seed {seed} cap {cap}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn monotone_non_increasing_in_capacity() {
        let t = random_trace(3, 2000, 120, 0.5);
        let h = StackDistHistogram::compute(&t, 1.0);
        let mut prev = f64::INFINITY;
        for cap in 0..130 {
            let mr = h.miss_rate_at_lines(cap);
            assert!(mr <= prev + 1e-15, "cap {cap}");
            prev = mr;
        }
        assert_eq!(h.miss_rate_at_lines(0), 1.0, "nothing fits in 0 lines");
        assert_eq!(
            h.miss_rate_at_lines(10_000),
            h.cold as f64 / h.measured as f64,
            "beyond the footprint only cold misses remain"
        );
    }

    #[test]
    fn duplicate_free_trace_is_all_cold_under_any_permutation() {
        let lines: Vec<u64> = (0..200u64).map(|i| i * 3 + 1).collect();
        let t = LineTrace {
            lines: lines.clone(),
            mark: 0,
        };
        let mut rev = lines;
        rev.reverse();
        let t2 = LineTrace {
            lines: rev,
            mark: 0,
        };
        let (h, h2) = (
            StackDistHistogram::compute(&t, 1.0),
            StackDistHistogram::compute(&t2, 1.0),
        );
        assert_eq!(h.cold, 200);
        assert_eq!(h, h2, "no reuse ⇒ order cannot matter");
        for cap in [0u64, 1, 100, 1000] {
            assert_eq!(h.miss_rate_at_lines(cap), 1.0);
        }
    }

    #[test]
    fn spatial_sampling_estimates_the_exact_curve() {
        // Large random trace over a modest universe: the sampled
        // estimate must track the exact curve closely.
        let t = random_trace(11, 60_000, 4000, 0.5);
        let exact = StackDistHistogram::compute(&t, 1.0);
        let (st, actual) = spatial_sample(&t, 0.1);
        let approx = StackDistHistogram::compute(&st, actual);
        assert!(approx.max_ci95() > 0.0);
        for cap in [100u64, 500, 1000, 2000, 3000, 4000] {
            let (e, a) = (
                exact.miss_rate_at_lines(cap),
                approx.miss_rate_at_lines(cap),
            );
            assert!(
                (e - a).abs() < 0.05,
                "cap {cap}: exact {e:.4} vs sampled {a:.4}"
            );
        }
    }

    #[test]
    fn rate_one_sampling_is_identity() {
        let t = random_trace(5, 500, 64, 0.4);
        let (st, r) = spatial_sample(&t, 1.0);
        assert_eq!(st, t);
        assert_eq!(r, 1.0);
        assert_eq!(
            StackDistHistogram::compute(&t, 1.0),
            StackDistHistogram::compute(&st, r)
        );
    }

    #[test]
    fn mark_splits_warm_from_measured() {
        // 3 distinct lines, each accessed twice; mark after the first
        // round: measured accesses all have distance 2.
        let t = LineTrace {
            lines: vec![1, 2, 3, 1, 2, 3],
            mark: 3,
        };
        let h = StackDistHistogram::compute(&t, 1.0);
        assert_eq!(h.measured, 3);
        assert_eq!(h.cold, 0, "warm-up absorbed the cold misses");
        assert_eq!(h.miss_rate_at_lines(3), 0.0);
        assert_eq!(h.miss_rate_at_lines(2), 1.0);
    }
}
