//! Finite-bandwidth DRAM channel with queueing.
//!
//! Each socket owns one channel. Every line transferred between the L3 and
//! memory — demand fills, prefetches, write-backs, NIC DMA — occupies the
//! channel for `line_bytes / bytes_per_cycle` cycles. Requests that arrive
//! while the channel is busy queue behind it; the resulting extra latency is
//! the *bandwidth contention* that the paper's BWThr manufactures and that
//! its Eq. 1 measures. Nothing else in the simulator throttles bandwidth,
//! so measured GB/s emerges purely from this serialization.

use serde::{Deserialize, Serialize};

use crate::telemetry::CycleHistogram;

/// Per-channel transfer statistics (the "uncore counters").
#[derive(Debug, Default, Clone, Copy, Serialize, Deserialize)]
pub struct DramStats {
    /// Demand lines read from DRAM (L3 misses).
    pub demand_lines: u64,
    /// Prefetched lines read from DRAM.
    pub prefetch_lines: u64,
    /// Dirty lines written back to DRAM.
    pub writeback_lines: u64,
    /// NIC DMA bytes (cross-node communication through this socket).
    pub dma_bytes: u64,
    /// Total cycles the channel spent busy.
    pub busy_cycles: u64,
}

impl DramStats {
    /// All bytes moved over the channel.
    pub fn total_bytes(&self, line_bytes: u32) -> u64 {
        (self.demand_lines + self.prefetch_lines + self.writeback_lines) * line_bytes as u64
            + self.dma_bytes
    }
}

/// One memory channel.
#[derive(Debug, Clone)]
pub struct DramChannel {
    /// Channel service rate.
    bytes_per_cycle: f64,
    /// Cycles to move one cache line.
    service_per_line: f64,
    line_bytes: u32,
    /// Time at which the channel next becomes free.
    next_free: f64,
    stats: DramStats,
    /// Histogram of per-demand queue+transfer delay; `None` (the default)
    /// costs one branch per demand and records nothing.
    queue_hist: Option<CycleHistogram>,
}

impl DramChannel {
    pub fn new(bytes_per_cycle: f64, line_bytes: u32) -> Self {
        assert!(bytes_per_cycle > 0.0);
        Self {
            bytes_per_cycle,
            service_per_line: line_bytes as f64 / bytes_per_cycle,
            line_bytes,
            next_free: 0.0,
            stats: DramStats::default(),
            queue_hist: None,
        }
    }

    /// Start recording the queue+transfer delay of every demand read into
    /// a [`CycleHistogram`]. Observation-only: timing is unaffected.
    pub fn enable_queue_histogram(&mut self) {
        self.queue_hist = Some(CycleHistogram::new());
    }

    /// The demand queue-delay histogram, if enabled.
    pub fn queue_histogram(&self) -> Option<&CycleHistogram> {
        self.queue_hist.as_ref()
    }

    /// Occupy the channel for `bytes` starting no earlier than `at`.
    /// Returns the delay (cycles beyond `at`) until the transfer completes.
    #[inline]
    fn occupy(&mut self, at: u64, bytes: u64) -> u64 {
        let service = bytes as f64 / self.bytes_per_cycle;
        let start = self.next_free.max(at as f64);
        self.next_free = start + service;
        self.stats.busy_cycles += service as u64;
        (self.next_free - at as f64).ceil() as u64
    }

    /// A demand line read (an L3 miss). Returns the queue+transfer delay;
    /// the caller adds the fixed DRAM latency.
    #[inline]
    pub fn demand(&mut self, at: u64) -> u64 {
        self.stats.demand_lines += 1;
        let delay = self.occupy(at, self.line_bytes as u64);
        if let Some(h) = self.queue_hist.as_mut() {
            h.record(delay);
        }
        delay
    }

    /// A prefetch line read. Occupies the channel; the core never stalls.
    #[inline]
    pub fn prefetch_fetch(&mut self, at: u64) {
        self.stats.prefetch_lines += 1;
        self.occupy(at, self.line_bytes as u64);
    }

    /// A dirty write-back. Occupies the channel; the core never stalls.
    #[inline]
    pub fn writeback(&mut self, at: u64) {
        self.stats.writeback_lines += 1;
        self.occupy(at, self.line_bytes as u64);
    }

    /// NIC DMA traffic for cross-node communication: both the sending and
    /// receiving socket pay memory bandwidth for the message body.
    #[inline]
    pub fn dma(&mut self, at: u64, bytes: u64) -> u64 {
        self.stats.dma_bytes += bytes;
        self.occupy(at, bytes)
    }

    /// How far ahead of `now` the channel is booked, in cycles. The
    /// prefetcher uses this to throttle itself when the channel saturates
    /// (real prefetchers do the same).
    #[inline]
    pub fn backlog(&self, now: u64) -> f64 {
        (self.next_free - now as f64).max(0.0)
    }

    /// Cycles to transfer a single line on an idle channel.
    #[inline]
    pub fn service_per_line(&self) -> f64 {
        self.service_per_line
    }

    pub fn stats(&self) -> DramStats {
        self.stats
    }

    #[inline]
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }
}

/// Bandwidth-throttle setting for one core: a token bucket on DRAM lines.
///
/// `lines_per_kilocycle` is the sustained refill rate; `burst_lines` is
/// the bucket depth. Like `AMEM_HORIZON`, the throttle is an
/// execution-time knob only — it never appears in [`crate::canonical_json`]
/// cache keys, because results obtained under a throttle are not
/// substitutable for unthrottled ones and the executor is never asked to
/// cache them (QoS runs go through [`crate::machine::Machine`] directly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThrottleCfg {
    /// Sustained rate: DRAM lines this core may fetch per 1000 cycles.
    pub lines_per_kilocycle: u32,
    /// Bucket depth: lines that may be issued back-to-back from a full
    /// bucket before the sustained rate binds.
    pub burst_lines: u32,
}

impl ThrottleCfg {
    /// The hardest setting the controller uses: ~1 line per 4000 cycles.
    /// Used to silence co-runners during an estimator "alone epoch".
    pub fn stall() -> Self {
        Self {
            lines_per_kilocycle: 1,
            burst_lines: 1,
        }
    }
}

/// Token-bucket rate limiter on DRAM line fetches, in pure integer
/// arithmetic so identical schedules always yield identical waits.
///
/// Internally one line costs `LINE_COST` credit units and the bucket
/// gains `lines_per_kilocycle` units per cycle (= `lines_per_kilocycle`
/// lines per kilocycle), capped at `burst_lines * LINE_COST`.
#[derive(Debug, Clone)]
pub struct LineThrottle {
    cfg: ThrottleCfg,
    /// Credit units per cycle.
    rate: u64,
    /// Credit cap in units.
    cap: u64,
    credit: u64,
    last: u64,
}

/// Credit units per line (the kilocycle scale).
const LINE_COST: u64 = 1000;

impl LineThrottle {
    pub fn new(cfg: ThrottleCfg) -> Self {
        assert!(cfg.lines_per_kilocycle > 0, "rate must be positive");
        assert!(cfg.burst_lines > 0, "burst must be positive");
        let cap = cfg.burst_lines as u64 * LINE_COST;
        Self {
            cfg,
            rate: cfg.lines_per_kilocycle as u64,
            cap,
            credit: cap, // a fresh bucket starts full
            last: 0,
        }
    }

    /// The setting this throttle was built from (so actuators can skip
    /// rebuilding — and thus refilling — an unchanged bucket).
    pub fn cfg(&self) -> ThrottleCfg {
        self.cfg
    }

    #[inline]
    fn refill(&mut self, now: u64) {
        if now > self.last {
            let gained = (now - self.last).saturating_mul(self.rate);
            self.credit = self.cap.min(self.credit.saturating_add(gained));
            self.last = now;
        }
    }

    /// Acquire one line of credit at time `now`, waiting if the bucket is
    /// empty. Returns the wait in cycles before the fetch may issue.
    #[inline]
    pub fn acquire(&mut self, now: u64) -> u64 {
        self.refill(now);
        if self.credit >= LINE_COST {
            self.credit -= LINE_COST;
            return 0;
        }
        let deficit = LINE_COST - self.credit;
        let wait = deficit.div_ceil(self.rate);
        // Credit state as of `now + wait`, minus the line just granted.
        self.credit = self
            .cap
            .min(self.credit + wait * self.rate)
            .saturating_sub(LINE_COST);
        self.last = now + wait;
        wait
    }

    /// Take one line of credit at `now` only if immediately available.
    /// Used for prefetches, which are dropped rather than delayed.
    #[inline]
    pub fn try_acquire(&mut self, now: u64) -> bool {
        self.refill(now);
        if self.credit >= LINE_COST {
            self.credit -= LINE_COST;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_channel_delay_is_service_time() {
        let mut ch = DramChannel::new(8.0, 64);
        // 64 bytes at 8 B/cyc = 8 cycles.
        assert_eq!(ch.demand(100), 8);
        assert_eq!(ch.stats().demand_lines, 1);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut ch = DramChannel::new(8.0, 64);
        assert_eq!(ch.demand(0), 8);
        // Second request at t=0 queues behind the first: 16 cycles total.
        assert_eq!(ch.demand(0), 16);
        assert_eq!(ch.demand(0), 24);
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut ch = DramChannel::new(8.0, 64);
        assert_eq!(ch.demand(0), 8);
        assert_eq!(ch.demand(1000), 8);
    }

    #[test]
    fn writeback_and_prefetch_occupy_channel() {
        let mut ch = DramChannel::new(8.0, 64);
        ch.writeback(0);
        ch.prefetch_fetch(0);
        // A demand read at t=0 now waits behind 16 cycles of traffic.
        assert_eq!(ch.demand(0), 24);
        let s = ch.stats();
        assert_eq!(s.writeback_lines, 1);
        assert_eq!(s.prefetch_lines, 1);
        assert_eq!(s.total_bytes(64), 3 * 64);
    }

    #[test]
    fn dma_charges_bytes() {
        let mut ch = DramChannel::new(8.0, 64);
        let d = ch.dma(0, 800);
        assert_eq!(d, 100);
        assert_eq!(ch.stats().dma_bytes, 800);
    }

    #[test]
    fn backlog_reflects_booking() {
        let mut ch = DramChannel::new(8.0, 64);
        assert_eq!(ch.backlog(0), 0.0);
        ch.demand(0);
        assert!(ch.backlog(0) >= 8.0);
        assert_eq!(ch.backlog(1_000_000), 0.0);
    }

    #[test]
    fn queue_histogram_records_demand_delays_only_when_enabled() {
        let mut ch = DramChannel::new(8.0, 64);
        ch.demand(0);
        assert!(ch.queue_histogram().is_none());
        ch.enable_queue_histogram();
        ch.demand(1000); // idle: 8 cycles
        ch.demand(1000); // queued: 16 cycles
        let h = ch.queue_histogram().unwrap();
        assert_eq!(h.total, 2);
        assert_eq!(h.sum, 24);
        assert_eq!(h.max, 16);
    }

    #[test]
    fn histogram_does_not_change_timing() {
        let mut plain = DramChannel::new(8.0, 64);
        let mut instrumented = DramChannel::new(8.0, 64);
        instrumented.enable_queue_histogram();
        for t in [0u64, 0, 3, 500, 501, 502] {
            assert_eq!(plain.demand(t), instrumented.demand(t));
        }
    }

    #[test]
    fn sustained_throughput_matches_rate() {
        // Saturate the channel: n requests all arriving at t=0 queue up;
        // the last one completes after exactly n * 64 / 7 cycles (modulo
        // the final ceil), so the effective rate equals the configured one.
        let mut ch = DramChannel::new(7.0, 64);
        let n = 10_000u64;
        let mut last = 0;
        for _ in 0..n {
            last = ch.demand(0);
        }
        let eff = (n * 64) as f64 / last as f64;
        assert!((eff - 7.0).abs() < 0.01, "effective rate {eff}");
    }

    #[test]
    fn throttle_burst_then_sustained_rate() {
        let mut th = LineThrottle::new(ThrottleCfg {
            lines_per_kilocycle: 100, // one line per 10 cycles
            burst_lines: 4,
        });
        // The full bucket covers the first four lines for free.
        for _ in 0..4 {
            assert_eq!(th.acquire(0), 0);
        }
        // Then each line waits 10 cycles of refill.
        assert_eq!(th.acquire(0), 10);
        assert_eq!(th.acquire(10), 10);
    }

    #[test]
    fn throttle_idle_time_refills_up_to_burst() {
        let mut th = LineThrottle::new(ThrottleCfg {
            lines_per_kilocycle: 100,
            burst_lines: 2,
        });
        assert_eq!(th.acquire(0), 0);
        assert_eq!(th.acquire(0), 0);
        assert_eq!(th.acquire(0), 10);
        // A long idle gap refills to the cap, never beyond it.
        for _ in 0..2 {
            assert_eq!(th.acquire(1_000_000), 0);
        }
        assert_eq!(th.acquire(1_000_000), 10);
    }

    #[test]
    fn throttle_try_acquire_never_waits() {
        let mut th = LineThrottle::new(ThrottleCfg {
            lines_per_kilocycle: 1,
            burst_lines: 1,
        });
        assert!(th.try_acquire(0));
        assert!(!th.try_acquire(0));
        assert!(!th.try_acquire(500));
        assert!(th.try_acquire(1000));
    }

    #[test]
    fn throttle_never_exceeds_budget() {
        // Over any horizon [0, T], the granted lines are bounded by
        // burst + T * rate / 1000 (+1 for the partial refill interval).
        let cfg = ThrottleCfg {
            lines_per_kilocycle: 37,
            burst_lines: 5,
        };
        let mut th = LineThrottle::new(cfg);
        let mut issued: Vec<u64> = Vec::new();
        let mut now = 0u64;
        for i in 0..5000u64 {
            // An adversarial mixed schedule with idle gaps.
            if i % 97 == 0 {
                now += 4000;
            }
            let w = th.acquire(now);
            issued.push(now + w);
            now += w;
        }
        for (k, &t) in issued.iter().enumerate() {
            let budget = cfg.burst_lines as u64 + (t * cfg.lines_per_kilocycle as u64) / 1000 + 1;
            assert!(
                (k as u64) < budget,
                "line {k} issued at {t} exceeds budget {budget}"
            );
        }
    }
}
