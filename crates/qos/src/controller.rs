//! The QoS control loop: an [`EpochController`] that interleaves MISE
//! alone-rate probing with notch-based enforcement.
//!
//! ## Epoch schedule
//!
//! ```text
//! warmup ... | shared × S | settle(app0) settle.. alone(app0).. | settle(app1) ... | shared × S | ...
//! ```
//!
//! * **shared** epochs measure every app's service rate under the current
//!   enforcement state (the denominator of the MISE ratio).
//! * For each app in turn, **settle** epochs silence all co-runners (hard
//!   token-bucket stall) and are discarded — they drain in-flight channel
//!   traffic and give the app a little re-warm time — then **alone**
//!   epochs sample its alone service rate (the numerator).
//! * When the probe round completes, the enforcement step runs: if a
//!   targeted app's estimate exceeds its `max_slowdown`, the noisiest
//!   best-effort app is tightened one *notch* (halving its L3 ways and
//!   its DRAM line rate); if every targeted app is comfortably under
//!   target, one notch is relaxed.
//!
//! Every boundary appends a [`Decision`] record — phase, estimates,
//! notch vector, actuations — to a serializable log. The conformance
//! `qos` lane asserts the log is byte-identical across repeated runs.

use amem_sim::control::{Actuation, CoreView, EpochController, Knob};
use amem_sim::{CoreCounters, MachineConfig, ThrottleCfg};
use serde::Serialize;

use crate::estimate::SlowdownEstimator;
use crate::policy::QosPolicy;

/// One application from the controller's point of view: a name and the
/// flat core indices it occupies.
#[derive(Debug, Clone)]
pub struct CtlApp {
    pub name: String,
    pub cores: Vec<usize>,
}

/// Controller tuning. [`QosCtlCfg::for_machine`] derives sensible
/// defaults from the machine geometry.
#[derive(Debug, Clone)]
pub struct QosCtlCfg {
    /// Epoch length in cycles.
    pub epoch_cycles: u64,
    /// Discarded epochs at the start of the run (cold caches).
    pub warmup_epochs: u64,
    /// Shared-measurement epochs between probe rounds.
    pub shared_epochs: u64,
    /// Discarded co-runner-stalled epochs before each alone measurement.
    pub settle_epochs: u64,
    /// Discarded epochs at the start of each shared block: after a probe
    /// round the just-stalled co-runners (and the probed apps' own cache
    /// shares) need a moment to return to the contended steady state.
    pub shared_settle_epochs: u64,
    /// Measured alone epochs per app per probe round.
    pub alone_epochs: u64,
    /// First epoch of the steady-state measurement window backing
    /// [`QosController::window_rates`]. Interference mixes ramp for a
    /// long time after the caches warm (shared-cache occupancy and
    /// channel backlog keep drifting), so rate windows that start right
    /// after `warmup_epochs` dilute the steady state with the ramp.
    /// `0` means "start as soon as warmup ends";
    /// [`crate::scenario::Scenario`] sets the back half of the run.
    pub measure_warmup_epochs: u64,
    /// EWMA weight for the rate estimates.
    pub ewma_alpha: f64,
    /// Ratio observations kept for the CI95.
    pub ci_window: usize,
    /// Maximum enforcement notch (each notch halves ways and line rate).
    pub max_notch: u32,
    /// L3 associativity (for notch → way-mask conversion).
    pub l3_ways: u32,
    /// Notch-1 throttle rate; deeper notches halve it.
    pub base_lines_per_kilocycle: u32,
    /// Relax a notch when every targeted app is below
    /// `target * relax_headroom`.
    pub relax_headroom: f64,
}

impl QosCtlCfg {
    pub fn for_machine(cfg: &MachineConfig) -> Self {
        // Notch 1 grants roughly half the channel's line rate.
        let channel_lines_per_kc =
            (1000.0 * cfg.dram_bytes_per_cycle / cfg.l3.line_bytes as f64) as u32;
        Self {
            epoch_cycles: 20_000,
            warmup_epochs: 2,
            shared_epochs: 6,
            settle_epochs: 1,
            shared_settle_epochs: 2,
            alone_epochs: 1,
            measure_warmup_epochs: 0,
            ewma_alpha: 0.3,
            ci_window: 32,
            max_notch: 5,
            l3_ways: cfg.l3.ways,
            base_lines_per_kilocycle: (channel_lines_per_kc / 2).max(1),
            relax_headroom: 0.8,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Warmup,
    Shared,
    Settle(usize),
    Alone(usize),
}

/// Estimator state snapshot embedded in each decision record.
#[derive(Debug, Clone, Serialize)]
pub struct EstimateSnapshot {
    pub app: String,
    /// EWMA(alone rate) / EWMA(shared rate), once both sides have data.
    pub estimate: Option<f64>,
    /// CI95 half-width over the recent ratio window, floored at the
    /// estimator's systematic-error fraction
    /// ([`SlowdownEstimator::SYS_ERR_FRAC`](crate::estimate::SlowdownEstimator::SYS_ERR_FRAC)).
    pub ci95_half: Option<f64>,
    /// Ratio observations backing the CI.
    pub samples: usize,
}

/// One epoch boundary's record in the decision log.
#[derive(Debug, Clone, Serialize)]
pub struct Decision {
    pub epoch: u64,
    /// Boundary cycle number.
    pub now: u64,
    /// Phase entered at this boundary ("warmup", "shared", "settle:x",
    /// "alone:x").
    pub phase: String,
    pub estimates: Vec<EstimateSnapshot>,
    /// Per-app enforcement notch after this boundary's decision.
    pub notches: Vec<u32>,
    /// Actuations handed back to the engine.
    pub actions: Vec<Actuation>,
}

/// The MISE estimator + enforcement loop. Attach to a run with
/// [`amem_sim::machine::Machine::run_controlled`].
pub struct QosController {
    cfg: QosCtlCfg,
    apps: Vec<CtlApp>,
    targets: Vec<Option<f64>>,
    /// App indices probed (given alone epochs) in rotation: the targeted
    /// apps when a policy is enforcing — best-effort apps don't need an
    /// estimate, and not probing them avoids stalling the targeted apps
    /// for their sake — or every app in estimation-only mode.
    probed: Vec<usize>,
    est: Vec<SlowdownEstimator>,
    /// Shared-epoch DRAM line rate per app (EWMA) — victim selection.
    bw_ewma: Vec<f64>,
    notch: Vec<u32>,
    phase: Phase,
    /// Epochs left in the current phase.
    left: u64,
    /// `(cycle, per-core counters)` at the previous boundary.
    prev: Option<(u64, Vec<CoreCounters>)>,
    /// `(cycle, per-core counters)` at the first post-warmup boundary at
    /// or after `cfg.measure_warmup_epochs`: the start of the
    /// measurement window for steady-state rates.
    win_start: Option<(u64, Vec<CoreCounters>)>,
    decisions: Vec<Decision>,
}

impl QosController {
    pub fn new(apps: Vec<CtlApp>, policy: &QosPolicy, cfg: QosCtlCfg) -> Self {
        assert!(!apps.is_empty(), "controller needs at least one app");
        let targets = apps
            .iter()
            .map(|a| policy.max_slowdown(&a.name))
            .collect::<Vec<_>>();
        let est = apps
            .iter()
            .map(|_| SlowdownEstimator::new(cfg.ewma_alpha, cfg.ci_window))
            .collect();
        let n = apps.len();
        let probed: Vec<usize> = if targets.iter().all(Option::is_none) {
            (0..n).collect()
        } else {
            (0..n).filter(|&i| targets[i].is_some()).collect()
        };
        Self {
            left: cfg.warmup_epochs.max(1),
            cfg,
            apps,
            targets,
            probed,
            est,
            bw_ewma: vec![0.0; n],
            notch: vec![0; n],
            phase: Phase::Warmup,
            prev: None,
            win_start: None,
            decisions: Vec::new(),
        }
    }

    /// The decision log, in epoch order.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Canonical-JSON rendering of the decision log (byte-comparable).
    pub fn decision_log_json(&self) -> String {
        amem_sim::canonical_json(&self.decisions)
    }

    /// Current slowdown estimate for `app`.
    pub fn estimate(&self, app: &str) -> Option<f64> {
        let i = self.apps.iter().position(|a| a.name == app)?;
        self.est[i].estimate()
    }

    /// Estimator snapshot (estimate + CI) for every app.
    pub fn snapshots(&self) -> Vec<EstimateSnapshot> {
        self.apps
            .iter()
            .enumerate()
            .map(|(i, a)| EstimateSnapshot {
                app: a.name.clone(),
                estimate: self.est[i].estimate(),
                ci95_half: self.est[i].ci95_half(),
                samples: self.est[i].samples(),
            })
            .collect()
    }

    /// Per-app enforcement notches.
    pub fn notches(&self) -> &[u32] {
        &self.notch
    }

    /// Steady-state service rate per app (accesses per cycle, summed over
    /// the app's cores) over the post-warmup window. `None` until at
    /// least one post-warmup boundary has fired.
    pub fn window_rates(&self) -> Option<Vec<f64>> {
        let (t0, c0) = self.win_start.as_ref()?;
        let (t1, c1) = self.prev.as_ref()?;
        let dt = t1.saturating_sub(*t0);
        if dt == 0 {
            return None;
        }
        Some(
            self.apps
                .iter()
                .map(|app| {
                    let acc: u64 = app
                        .cores
                        .iter()
                        .map(|&c| c1[c].delta_since(&c0[c]).accesses())
                        .sum();
                    acc as f64 / dt as f64
                })
                .collect(),
        )
    }

    fn full_mask(&self) -> u32 {
        if self.cfg.l3_ways >= 32 {
            u32::MAX
        } else {
            (1u32 << self.cfg.l3_ways) - 1
        }
    }

    fn mask_for_notch(&self, n: u32) -> u32 {
        if n == 0 {
            return self.full_mask();
        }
        let kept = (self.cfg.l3_ways >> n).max(1);
        (1u32 << kept) - 1
    }

    fn throttle_for_notch(&self, n: u32) -> Option<ThrottleCfg> {
        if n == 0 {
            return None;
        }
        Some(ThrottleCfg {
            lines_per_kilocycle: (self.cfg.base_lines_per_kilocycle >> (n - 1)).max(1),
            burst_lines: 8,
        })
    }

    /// The steady-state (shared-phase) knobs for app `i`.
    fn enforcement_knobs(&self, i: usize, out: &mut Vec<Actuation>) {
        let mask = self.mask_for_notch(self.notch[i]);
        let throttle = self.throttle_for_notch(self.notch[i]);
        for &core in &self.apps[i].cores {
            out.push(Actuation {
                core,
                knob: Knob::L3WayMask(mask),
            });
            out.push(Actuation {
                core,
                knob: match throttle {
                    Some(t) => Knob::Throttle(t),
                    None => Knob::Unthrottle,
                },
            });
        }
    }

    fn phase_actuations(&self, phase: Phase) -> Vec<Actuation> {
        let mut out = Vec::new();
        match phase {
            Phase::Warmup => {}
            Phase::Shared => {
                for i in 0..self.apps.len() {
                    self.enforcement_knobs(i, &mut out);
                }
            }
            Phase::Settle(k) | Phase::Alone(k) => {
                let p = self.probed[k];
                for (i, app) in self.apps.iter().enumerate() {
                    if i == p {
                        // The probed app runs as if alone: full cache
                        // allocation rights, no throttle.
                        for &core in &app.cores {
                            out.push(Actuation {
                                core,
                                knob: Knob::L3WayMask(self.full_mask()),
                            });
                            out.push(Actuation {
                                core,
                                knob: Knob::Unthrottle,
                            });
                        }
                    } else {
                        // Everyone else is silenced (but keeps its mask:
                        // a stalled core issues almost no fills anyway).
                        for &core in &app.cores {
                            out.push(Actuation {
                                core,
                                knob: Knob::Throttle(ThrottleCfg::stall()),
                            });
                        }
                    }
                }
            }
        }
        out
    }

    fn phase_label(&self, phase: Phase) -> String {
        match phase {
            Phase::Warmup => "warmup".to_string(),
            Phase::Shared => "shared".to_string(),
            Phase::Settle(k) => format!("settle:{}", self.apps[self.probed[k]].name),
            Phase::Alone(k) => format!("alone:{}", self.apps[self.probed[k]].name),
        }
    }

    /// Attribute the interval that just ended to the phase it ran under.
    fn attribute(&mut self, cores: &[CoreView], now: u64) {
        let Some((prev_now, prev)) = &self.prev else {
            return;
        };
        let dt = now.saturating_sub(*prev_now);
        if dt == 0 {
            return;
        }
        let rates: Vec<(f64, f64)> = self
            .apps
            .iter()
            .map(|app| {
                let mut acc = 0u64;
                let mut lines = 0u64;
                for &c in &app.cores {
                    let d = cores[c].counters.delta_since(&prev[c]);
                    acc += d.accesses();
                    lines += d.dram_demand_lines + d.dram_prefetch_lines;
                }
                (acc as f64 / dt as f64, lines as f64 / dt as f64)
            })
            .collect();
        match self.phase {
            Phase::Warmup | Phase::Settle(_) => {}
            Phase::Shared => {
                // `left` has not been decremented yet, so the number of
                // shared epochs already elapsed in this block is
                // `shared_epochs - left`; the first few settle back into
                // contention after a probe round and are discarded.
                let elapsed = self.cfg.shared_epochs.max(1).saturating_sub(self.left);
                if elapsed < self.cfg.shared_settle_epochs {
                    return;
                }
                for (i, &(rate, lines)) in rates.iter().enumerate() {
                    self.est[i].observe_shared(rate);
                    let b = &mut self.bw_ewma[i];
                    *b += self.cfg.ewma_alpha * (lines - *b);
                }
            }
            Phase::Alone(k) => {
                let p = self.probed[k];
                self.est[p].observe_alone(rates[p].0);
            }
        }
    }

    /// One enforcement step, run when a probe round completes.
    fn enforce(&mut self) {
        if self.targets.iter().all(|t| t.is_none()) {
            return;
        }
        // Tighten: the first targeted app over budget picks the noisiest
        // best-effort apps that still have notches to give. The number of
        // notches applied per round scales with the size of the violation
        // so large co-schedules converge before the run ends (one notch
        // per round cannot keep up with seven aggressors).
        for i in 0..self.apps.len() {
            let (Some(target), Some(est)) = (self.targets[i], self.est[i].estimate()) else {
                continue;
            };
            if est <= target {
                continue;
            }
            let over = est / target;
            let n_tighten = if over > 1.5 {
                3
            } else if over > 1.2 {
                2
            } else {
                1
            };
            let mut victims: Vec<usize> = (0..self.apps.len())
                .filter(|&j| self.targets[j].is_none() && j != i)
                .filter(|&j| self.notch[j] < self.cfg.max_notch)
                .collect();
            // Noisiest first; lower index wins ties for determinism.
            victims.sort_by(|&a, &b| {
                self.bw_ewma[b]
                    .partial_cmp(&self.bw_ewma[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            for &v in victims.iter().take(n_tighten) {
                self.notch[v] += 1;
            }
            return;
        }
        // Relax: every targeted app comfortably under budget frees one
        // notch on the most-throttled best-effort app.
        let comfy = (0..self.apps.len()).all(|i| match (self.targets[i], self.est[i].estimate()) {
            (Some(t), Some(e)) => e < t * self.cfg.relax_headroom,
            (Some(_), None) => false,
            (None, _) => true,
        });
        if comfy {
            if let Some(v) = (0..self.apps.len())
                .filter(|&j| self.targets[j].is_none() && self.notch[j] > 0)
                .max_by_key(|&j| (self.notch[j], std::cmp::Reverse(j)))
            {
                self.notch[v] -= 1;
            }
        }
    }
}

impl EpochController for QosController {
    fn epoch_cycles(&self) -> u64 {
        self.cfg.epoch_cycles
    }

    fn on_epoch(&mut self, epoch: u64, now: u64, cores: &[CoreView]) -> Vec<Actuation> {
        self.attribute(cores, now);
        // Phase transition.
        self.left = self.left.saturating_sub(1);
        let mut actions = Vec::new();
        if self.left == 0 {
            let next = match self.phase {
                Phase::Warmup => Phase::Shared,
                Phase::Shared => Phase::Settle(0),
                Phase::Settle(k) => Phase::Alone(k),
                Phase::Alone(k) => {
                    if k + 1 < self.probed.len() {
                        Phase::Settle(k + 1)
                    } else {
                        self.enforce();
                        Phase::Shared
                    }
                }
            };
            self.left = match next {
                Phase::Warmup => unreachable!("warmup never re-entered"),
                Phase::Shared => self.cfg.shared_epochs.max(1),
                Phase::Settle(_) => self.cfg.settle_epochs.max(1),
                Phase::Alone(_) => self.cfg.alone_epochs.max(1),
            };
            self.phase = next;
            actions = self.phase_actuations(next);
        }
        self.decisions.push(Decision {
            epoch,
            now,
            phase: self.phase_label(self.phase),
            estimates: self.snapshots(),
            notches: self.notch.clone(),
            actions: actions.clone(),
        });
        let snap = (now, cores.iter().map(|c| c.counters).collect::<Vec<_>>());
        if self.win_start.is_none()
            && self.phase != Phase::Warmup
            && epoch + 1 >= self.cfg.measure_warmup_epochs
        {
            self.win_start = Some(snap.clone());
        }
        self.prev = Some(snap);
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_apps() -> Vec<CtlApp> {
        vec![
            CtlApp {
                name: "victim".into(),
                cores: vec![0],
            },
            CtlApp {
                name: "hog".into(),
                cores: vec![1],
            },
        ]
    }

    fn cfg() -> QosCtlCfg {
        QosCtlCfg::for_machine(&MachineConfig::xeon20mb().scaled(0.125))
    }

    fn views(n: usize, per_epoch: &[u64], epochs: u64) -> Vec<CoreView> {
        (0..n)
            .map(|i| CoreView {
                core: i,
                socket: 0,
                job: Some(i),
                primary: false,
                done: false,
                time: epochs * 20_000,
                counters: CoreCounters {
                    loads: per_epoch[i] * epochs,
                    cycles: epochs * 20_000,
                    ..Default::default()
                },
                l3_way_mask: u32::MAX,
                throttle: None,
            })
            .collect()
    }

    #[test]
    fn schedule_cycles_through_phases() {
        let mut c = QosController::new(two_apps(), &QosPolicy::none(), cfg());
        let rates = [100u64, 400];
        for e in 0..20u64 {
            c.on_epoch(e, (e + 1) * 20_000, &views(2, &rates, e + 1));
        }
        let labels: Vec<&str> = c.decisions().iter().map(|d| d.phase.as_str()).collect();
        assert_eq!(&labels[..2], &["warmup", "shared"]);
        assert!(labels.contains(&"settle:victim"));
        assert!(labels.contains(&"alone:victim"));
        assert!(labels.contains(&"alone:hog"));
        // Warmup and interior epochs emit no actuations; transitions do.
        assert!(c.decisions()[0].actions.is_empty());
        assert!(c
            .decisions()
            .iter()
            .any(|d| d.phase == "alone:victim" && !d.actions.is_empty()));
    }

    #[test]
    fn stalls_co_runners_during_alone_epochs() {
        let mut c = QosController::new(two_apps(), &QosPolicy::none(), cfg());
        let rates = [100u64, 400];
        let mut stalled_hog = false;
        for e in 0..20u64 {
            let acts = c.on_epoch(e, (e + 1) * 20_000, &views(2, &rates, e + 1));
            if c.decisions().last().unwrap().phase == "settle:victim" {
                stalled_hog |= acts
                    .iter()
                    .any(|a| a.core == 1 && a.knob == Knob::Throttle(ThrottleCfg::stall()));
            }
        }
        assert!(stalled_hog);
    }

    #[test]
    fn notch_mask_and_rate_halve() {
        let c = QosController::new(two_apps(), &QosPolicy::none(), cfg());
        assert_eq!(c.mask_for_notch(0), c.full_mask());
        let m1 = c.mask_for_notch(1);
        assert_eq!(m1.count_ones(), (c.cfg.l3_ways / 2).max(1));
        assert_eq!(c.mask_for_notch(c.cfg.max_notch).count_ones(), 1);
        assert!(c.throttle_for_notch(0).is_none());
        let t1 = c.throttle_for_notch(1).unwrap();
        let t2 = c.throttle_for_notch(2).unwrap();
        assert_eq!(t1.lines_per_kilocycle, c.cfg.base_lines_per_kilocycle);
        assert_eq!(
            t2.lines_per_kilocycle.max(1),
            (t1.lines_per_kilocycle / 2).max(1)
        );
    }
}
