//! Co-schedule scenarios: named apps pinned to cores, run solo, shared
//! ("naive"), shared-with-estimation, or shared-with-enforcement.
//!
//! A scenario is the qos crate's unit of experiment. Apps are infinite
//! interference-style streams (so service *rate* over a fixed cycle
//! budget is the natural performance metric — exactly MISE's
//! request-service-rate); the simulator makes ground truth exact:
//!
//! * **solo rate** — the app's rate with the machine to itself;
//! * **naive rate** — its rate co-scheduled with everyone, no controller;
//! * **true slowdown** — solo / naive, the quantity the online estimator
//!   must reproduce from inside a single shared run.
//!
//! All runs go through [`amem_sim::machine::Machine`] directly — never
//! the executor cache — because controller state (like `AMEM_HORIZON`)
//! is deliberately not part of any cache key.

use amem_interfere::{BwThread, BwThreadCfg, CsThread, CsThreadCfg};
use amem_sim::config::CoreId;
use amem_sim::control::{Actuation, CoreView, EpochController};
use amem_sim::machine::Machine;
use amem_sim::stream::AccessStream;
use amem_sim::{CoreCounters, Job, MachineConfig, RunLimit, RunReport};

use crate::controller::{CtlApp, QosController, QosCtlCfg};
use crate::policy::QosPolicy;

/// What an app runs. All kinds are infinite streams.
#[derive(Debug, Clone)]
pub enum AppKind {
    /// Cache-resident random walker: a CSThr whose buffer fits in the
    /// L3 (default: 1/5 of it). Latency-bound on L3 hits; the canonical
    /// *resident* victim of a cache thrasher.
    Resident(CsThreadCfg),
    /// DRAM-latency-bound random walker: a CSThr buffer much larger than
    /// the L3, so almost every access misses. The canonical
    /// *latency-sensitive* victim of a bandwidth hog.
    DramBound(CsThreadCfg),
    /// Streaming bandwidth hog (BWThr).
    Stream(BwThreadCfg),
}

/// One application: a name, a stream kind, and the cores it occupies.
#[derive(Debug, Clone)]
pub struct App {
    pub name: String,
    pub kind: AppKind,
    pub cores: Vec<CoreId>,
}

impl App {
    /// A cache-resident victim on one core.
    pub fn resident(name: &str, m: &MachineConfig, core: CoreId, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            kind: AppKind::Resident(CsThreadCfg::for_machine(m).with_seed(seed)),
            cores: vec![core],
        }
    }

    /// A DRAM-bound victim on one core (buffer = 32× L3, so almost none
    /// of the working set is ever resident and performance is dominated
    /// by DRAM latency and bandwidth, not cache capacity — the mix
    /// reaches steady state quickly and its slowdown is the
    /// bandwidth-mediated kind the MISE probe can see; see DESIGN.md on
    /// capacity blindness).
    pub fn dram_bound(name: &str, m: &MachineConfig, core: CoreId, seed: u64) -> Self {
        let cfg = CsThreadCfg {
            buffer_bytes: 32 * m.l3.size_bytes,
            ..CsThreadCfg::for_machine(m).with_seed(seed)
        };
        Self {
            name: name.to_string(),
            kind: AppKind::DramBound(cfg),
            cores: vec![core],
        }
    }

    /// A streaming bandwidth hog on one core.
    pub fn stream(name: &str, m: &MachineConfig, core: CoreId) -> Self {
        Self {
            name: name.to_string(),
            kind: AppKind::Stream(BwThreadCfg::for_machine(m)),
            cores: vec![core],
        }
    }

    fn build_stream(&self, machine: &mut Machine, nth_core: u64) -> Box<dyn AccessStream> {
        match &self.kind {
            AppKind::Resident(cfg) | AppKind::DramBound(cfg) => {
                let cfg = cfg.with_seed(cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(nth_core));
                Box::new(CsThread::new(machine, &cfg))
            }
            AppKind::Stream(cfg) => Box::new(BwThread::new(machine, cfg)),
        }
    }
}

/// A co-schedule on one machine, run for a fixed cycle budget.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub machine: MachineConfig,
    pub apps: Vec<App>,
    /// Cycle budget per run (every app is a background job; the budget
    /// is the only stop condition).
    pub max_cycles: u64,
}

/// Per-app outcome of one run.
#[derive(Debug, Clone)]
pub struct AppRate {
    pub name: String,
    /// Service rate: memory accesses retired per cycle, summed over the
    /// app's cores.
    pub rate: f64,
}

/// A [`NullController`](amem_sim::NullController) that additionally
/// snapshots per-core counters at every boundary, so baseline (solo and
/// naive) rates can be measured over the same post-warmup window — and
/// under the same epoch-bounded dispatch semantics — as controlled runs.
struct Recorder {
    epoch_cycles: u64,
    warmup_epochs: u64,
    start: Option<(u64, Vec<CoreCounters>)>,
    last: Option<(u64, Vec<CoreCounters>)>,
}

impl Recorder {
    fn new(epoch_cycles: u64, warmup_epochs: u64) -> Self {
        Self {
            epoch_cycles,
            warmup_epochs: warmup_epochs.max(1),
            start: None,
            last: None,
        }
    }

    /// Steady-state rate of the app occupying `cores` (flat indices).
    fn rate(&self, cores: &[usize]) -> Option<f64> {
        let (t0, c0) = self.start.as_ref()?;
        let (t1, c1) = self.last.as_ref()?;
        let dt = t1.saturating_sub(*t0);
        if dt == 0 {
            return None;
        }
        let acc: u64 = cores
            .iter()
            .map(|&c| c1[c].delta_since(&c0[c]).accesses())
            .sum();
        Some(acc as f64 / dt as f64)
    }
}

impl EpochController for Recorder {
    fn epoch_cycles(&self) -> u64 {
        self.epoch_cycles
    }

    fn on_epoch(&mut self, epoch: u64, now: u64, cores: &[CoreView]) -> Vec<Actuation> {
        let snap = (now, cores.iter().map(|c| c.counters).collect::<Vec<_>>());
        if self.start.is_none() && epoch + 1 >= self.warmup_epochs {
            self.start = Some(snap.clone());
        }
        self.last = Some(snap);
        Vec::new()
    }
}

/// Everything a shared run produces.
pub struct RunOutcome {
    pub report: RunReport,
    pub rates: Vec<AppRate>,
    /// The controller, when one drove the run (estimates, decision log).
    pub controller: Option<QosController>,
}

impl Scenario {
    pub fn new(machine: MachineConfig, apps: Vec<App>, max_cycles: u64) -> Self {
        let mut seen: Vec<usize> = Vec::new();
        for a in &apps {
            for c in &a.cores {
                let f = c.flat(&machine);
                assert!(!seen.contains(&f), "core {c:?} assigned twice");
                seen.push(f);
            }
        }
        Self {
            machine,
            apps,
            max_cycles,
        }
    }

    fn limit(&self) -> RunLimit {
        RunLimit {
            max_cycles: Some(self.max_cycles),
            ..RunLimit::default()
        }
    }

    fn build_jobs(&self, machine: &mut Machine, only: Option<usize>) -> Vec<Job> {
        let mut jobs = Vec::new();
        for (i, app) in self.apps.iter().enumerate() {
            if only.is_some_and(|o| o != i) {
                continue;
            }
            for (k, &core) in app.cores.iter().enumerate() {
                let stream = app.build_stream(machine, k as u64);
                jobs.push(Job::background(stream, core));
            }
        }
        jobs
    }

    /// Build the full co-schedule's jobs against `machine`. Public so
    /// the conformance lane can drive the engine directly — including
    /// through the planted epoch off-by-one — with exactly the jobs a
    /// controlled run would use.
    pub fn jobs(&self, machine: &mut Machine) -> Vec<Job> {
        self.build_jobs(machine, None)
    }

    /// The controller-side view of the apps (name + flat cores), in app
    /// order — what [`Scenario::run_controlled`] hands to
    /// [`QosController::new`].
    pub fn ctl_apps(&self) -> Vec<CtlApp> {
        self.apps
            .iter()
            .map(|a| CtlApp {
                name: a.name.clone(),
                cores: a.cores.iter().map(|c| c.flat(&self.machine)).collect(),
            })
            .collect()
    }

    fn rates_of(&self, report: &RunReport, only: Option<usize>) -> Vec<AppRate> {
        // Jobs were pushed in app order, so attribute them back the same
        // way.
        let mut rates = Vec::new();
        let mut ji = 0usize;
        for (i, app) in self.apps.iter().enumerate() {
            if only.is_some_and(|o| o != i) {
                continue;
            }
            let mut acc = 0u64;
            let mut cycles = 0u64;
            for _ in &app.cores {
                let j = &report.jobs[ji];
                acc += j.counters.accesses();
                cycles = cycles.max(j.counters.cycles);
                ji += 1;
            }
            rates.push(AppRate {
                name: app.name.clone(),
                rate: if cycles == 0 {
                    0.0
                } else {
                    acc as f64 / cycles as f64
                },
            });
        }
        rates
    }

    /// Run one app by itself; returns its solo service rate.
    ///
    /// Solo and naive runs attach an observing-only controller with the
    /// default epoch schedule: attaching any controller switches the
    /// engine to epoch-bounded dispatch, and ground truth must be
    /// measured under the same dispatch semantics — and over the same
    /// post-warmup window — as the controlled run it calibrates.
    pub fn run_solo(&self, app_idx: usize) -> f64 {
        let cfg = self.default_cfg();
        let mut machine = Machine::new(self.machine.clone());
        let jobs = self.build_jobs(&mut machine, Some(app_idx));
        let mut rec = Recorder::new(cfg.epoch_cycles, self.measure_warmup(&cfg));
        let report = machine.run_controlled(jobs, self.limit(), &mut rec);
        let flat = self.flat_cores(app_idx);
        rec.rate(&flat)
            .unwrap_or_else(|| self.rates_of(&report, Some(app_idx))[0].rate)
    }

    /// Run the full co-schedule with no enforcement or probing (the naive
    /// schedule); see [`Scenario::run_solo`] for why a controller is
    /// still attached.
    pub fn run_naive(&self) -> RunOutcome {
        let cfg = self.default_cfg();
        let mut machine = Machine::new(self.machine.clone());
        let jobs = self.build_jobs(&mut machine, None);
        let mut rec = Recorder::new(cfg.epoch_cycles, self.measure_warmup(&cfg));
        let report = machine.run_controlled(jobs, self.limit(), &mut rec);
        let rates = self
            .apps
            .iter()
            .enumerate()
            .map(|(i, a)| AppRate {
                name: a.name.clone(),
                rate: rec
                    .rate(&self.flat_cores(i))
                    .unwrap_or_else(|| self.rates_of(&report, None)[i].rate),
            })
            .collect();
        RunOutcome {
            report,
            rates,
            controller: None,
        }
    }

    /// The default controller tuning for this scenario's machine.
    pub fn default_cfg(&self) -> QosCtlCfg {
        QosCtlCfg::for_machine(&self.machine)
    }

    /// First epoch of the steady-state measurement window: the back half
    /// of the run. Co-schedules keep drifting long after the caches warm
    /// (shared-cache occupancy equilibrates over ~10^6 cycles at the
    /// scales used here), so rates averaged from the nominal warmup
    /// boundary onward still dilute the steady state with the ramp.
    fn measure_warmup(&self, cfg: &QosCtlCfg) -> u64 {
        (self.max_cycles / cfg.epoch_cycles.max(1) / 2).max(cfg.warmup_epochs)
    }

    fn flat_cores(&self, app_idx: usize) -> Vec<usize> {
        self.apps[app_idx]
            .cores
            .iter()
            .map(|c| c.flat(&self.machine))
            .collect()
    }

    /// Run the full co-schedule under a [`QosController`]. With
    /// [`QosPolicy::none`] this is estimation-only (the probing epochs
    /// perturb the run slightly; no enforcement happens).
    pub fn run_controlled(&self, policy: &QosPolicy, ctl_cfg: QosCtlCfg) -> RunOutcome {
        let mut ctl_cfg = ctl_cfg;
        if ctl_cfg.measure_warmup_epochs == 0 {
            ctl_cfg.measure_warmup_epochs = self.measure_warmup(&ctl_cfg);
        }
        let mut machine = Machine::new(self.machine.clone());
        let jobs = self.build_jobs(&mut machine, None);
        let mut ctl = QosController::new(self.ctl_apps(), policy, ctl_cfg);
        let report = machine.run_controlled(jobs, self.limit(), &mut ctl);
        let rates = match ctl.window_rates() {
            Some(w) => self
                .apps
                .iter()
                .zip(w)
                .map(|(a, rate)| AppRate {
                    name: a.name.clone(),
                    rate,
                })
                .collect(),
            None => self.rates_of(&report, None),
        };
        RunOutcome {
            report,
            rates,
            controller: Some(ctl),
        }
    }

    /// Exact ground-truth slowdown of every app: solo rate / naive shared
    /// rate. Returns `(name, truth)` pairs in app order.
    pub fn true_slowdowns(&self) -> Vec<(String, f64)> {
        let naive = self.run_naive();
        self.apps
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let solo = self.run_solo(i);
                (a.name.clone(), solo / naive.rates[i].rate)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MachineConfig {
        MachineConfig::xeon20mb().scaled(0.0625)
    }

    #[test]
    fn solo_rate_is_reproducible_and_positive() {
        let m = m();
        let s = Scenario::new(
            m.clone(),
            vec![App::dram_bound("v", &m, CoreId::new(0, 0), 7)],
            200_000,
        );
        let a = s.run_solo(0);
        let b = s.run_solo(0);
        assert!(a > 0.0);
        assert_eq!(a, b, "solo runs are deterministic");
    }

    #[test]
    fn sharing_reduces_rate() {
        let m = m();
        let s = Scenario::new(
            m.clone(),
            vec![
                App::dram_bound("v", &m, CoreId::new(0, 0), 7),
                App::stream("hog", &m, CoreId::new(0, 1)),
            ],
            400_000,
        );
        let solo = s.run_solo(0);
        let naive = s.run_naive();
        assert!(naive.rates[0].rate < solo);
        let truth = &s.true_slowdowns()[0];
        assert!(truth.1 > 1.0, "slowdown {}", truth.1);
    }
}
