//! The "with enforcement" twins of the paper's degradation figures.
//!
//! Fig. 9 (and Fig. 12's summary) plot degradation against interference
//! level with *no* recourse: the victim takes whatever the co-schedule
//! does to it. The twin produced here re-runs the same sweep with the QoS
//! loop enforcing a slowdown target on the victim — the bench `qos` bin
//! renders it, and a golden CSV under `tests/data/` pins every row.
//!
//! These functions are deterministic pure library code so the golden
//! test, the bench bin, and CI all share one implementation.

use amem_interfere::InterferenceKind;
use amem_sim::config::CoreId;
use amem_sim::MachineConfig;

use crate::controller::QosCtlCfg;
use crate::policy::QosPolicy;
use crate::scenario::{App, Scenario};

/// One sweep point of the enforcement twin.
#[derive(Debug, Clone)]
pub struct EnforcedPoint {
    /// Interference thread count.
    pub count: usize,
    /// True slowdown under the naive co-schedule (solo / naive rate).
    pub naive_slowdown: f64,
    /// True slowdown with the QoS loop enforcing the target.
    pub enforced_slowdown: f64,
    /// The controller's own final estimate during the enforced run.
    pub estimate: Option<f64>,
    /// The policy target.
    pub target: f64,
}

/// The victim used by the sweep: DRAM-bound (latency-sensitive) against
/// bandwidth hogs, cache-resident against storage thrashers.
fn victim_for(kind: InterferenceKind, m: &MachineConfig) -> App {
    match kind {
        InterferenceKind::Bandwidth => App::dram_bound("victim", m, CoreId::new(0, 0), 11),
        InterferenceKind::Storage => App::resident("victim", m, CoreId::new(0, 0), 11),
    }
}

fn aggressor_for(kind: InterferenceKind, m: &MachineConfig, i: usize) -> App {
    let core = CoreId::new(0, 1 + i as u32);
    match kind {
        InterferenceKind::Bandwidth => App::stream(&format!("bw{i}"), m, core),
        // The paper's CSThr: a cache thrasher re-touching 1/5 of the L3.
        InterferenceKind::Storage => App::resident(&format!("cs{i}"), m, core, 0x5EED + i as u64),
    }
}

/// Build the scenario for one sweep point.
pub fn sweep_scenario(
    machine: &MachineConfig,
    kind: InterferenceKind,
    count: usize,
    max_cycles: u64,
) -> Scenario {
    let mut apps = vec![victim_for(kind, machine)];
    for i in 0..count {
        apps.push(aggressor_for(kind, machine, i));
    }
    Scenario::new(machine.clone(), apps, max_cycles)
}

/// The enforcement twin of one fig9-style panel: victim slowdown vs
/// interference count, naive and enforced side by side.
pub fn enforced_sweep(
    machine: &MachineConfig,
    kind: InterferenceKind,
    counts: &[usize],
    target: f64,
    max_cycles: u64,
) -> Vec<EnforcedPoint> {
    let policy = QosPolicy::none().with_target("victim", target);
    counts
        .iter()
        .map(|&count| {
            let sc = sweep_scenario(machine, kind, count, max_cycles);
            let solo = sc.run_solo(0);
            let naive = sc.run_naive();
            let enforced = sc.run_controlled(&policy, QosCtlCfg::for_machine(machine));
            let ctl = enforced.controller.as_ref().expect("controlled run");
            EnforcedPoint {
                count,
                naive_slowdown: solo / naive.rates[0].rate,
                enforced_slowdown: solo / enforced.rates[0].rate,
                estimate: ctl.estimate("victim"),
                target,
            }
        })
        .collect()
}

/// One row of the per-app enforcement summary (the fig12-style twin).
#[derive(Debug, Clone)]
pub struct AppOutcomeRow {
    pub app: String,
    pub target: Option<f64>,
    pub naive_slowdown: f64,
    pub enforced_slowdown: f64,
    pub estimate: Option<f64>,
    pub ci95_half: Option<f64>,
    pub final_notch: u32,
}

/// Run one adversarial co-schedule naive and enforced, and summarize
/// every app: the fig12-style "who pays for whose QoS" table.
pub fn enforcement_table(scenario: &Scenario, policy: &QosPolicy) -> Vec<AppOutcomeRow> {
    let solos: Vec<f64> = (0..scenario.apps.len())
        .map(|i| scenario.run_solo(i))
        .collect();
    let naive = scenario.run_naive();
    let enforced = scenario.run_controlled(policy, QosCtlCfg::for_machine(&scenario.machine));
    let ctl = enforced.controller.as_ref().expect("controlled run");
    let snaps = ctl.snapshots();
    scenario
        .apps
        .iter()
        .enumerate()
        .map(|(i, a)| AppOutcomeRow {
            app: a.name.clone(),
            target: policy.max_slowdown(&a.name),
            naive_slowdown: solos[i] / naive.rates[i].rate,
            enforced_slowdown: solos[i] / enforced.rates[i].rate,
            estimate: snaps[i].estimate,
            ci95_half: snaps[i].ci95_half,
            final_notch: ctl.notches()[i],
        })
        .collect()
}

/// Render an [`EnforcedPoint`] sweep as CSV-ready string rows (count,
/// naive, enforced, estimate, target), with fixed formatting so golden
/// files are byte-stable.
pub fn enforced_sweep_rows(points: &[EnforcedPoint]) -> Vec<Vec<String>> {
    points
        .iter()
        .map(|p| {
            vec![
                p.count.to_string(),
                format!("{:.4}", p.naive_slowdown),
                format!("{:.4}", p.enforced_slowdown),
                p.estimate
                    .map(|e| format!("{e:.4}"))
                    .unwrap_or_else(|| "-".to_string()),
                format!("{:.2}", p.target),
            ]
        })
        .collect()
}
