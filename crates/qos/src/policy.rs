//! QoS policy: per-application slowdown targets.

use serde::{Deserialize, Serialize};

/// Per-app maximum-slowdown targets. Apps without an entry are
/// *best-effort*: the controller is free to squeeze them (CAT mask +
/// bandwidth throttle) to keep the targeted apps within bounds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QosPolicy {
    /// `(app name, max_slowdown)` pairs; `max_slowdown` ≥ 1.
    pub targets: Vec<(String, f64)>,
}

impl QosPolicy {
    /// The empty policy: estimation only, no enforcement.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a target for `app`.
    pub fn with_target(mut self, app: &str, max_slowdown: f64) -> Self {
        assert!(
            max_slowdown >= 1.0,
            "a slowdown target below 1 is unmeetable"
        );
        self.targets.push((app.to_string(), max_slowdown));
        self
    }

    /// The target for `app`, if any.
    pub fn max_slowdown(&self, app: &str) -> Option<f64> {
        self.targets.iter().find(|(n, _)| n == app).map(|&(_, t)| t)
    }

    /// Whether any app has a target (i.e. enforcement is on).
    pub fn is_enforcing(&self) -> bool {
        !self.targets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup() {
        let p = QosPolicy::none().with_target("victim", 1.3);
        assert_eq!(p.max_slowdown("victim"), Some(1.3));
        assert_eq!(p.max_slowdown("hog"), None);
        assert!(p.is_enforcing());
        assert!(!QosPolicy::none().is_enforcing());
    }
}
