//! # amem-qos — online slowdown estimation and QoS enforcement
//!
//! The paper's measurement basis (shared-cache storage, memory
//! bandwidth) answers *offline* questions. This crate closes the loop
//! the Subramanian line of work describes (MISE / ASM, see PAPERS.md):
//!
//! 1. [`estimate`] — a MISE-style online slowdown estimator: periodic
//!    "alone epochs" silence co-runners with a hard bandwidth throttle
//!    and sample the app's alone request-service-rate; slowdown =
//!    EWMA(alone rate) / EWMA(shared rate), CI-tracked with the
//!    measurement runtime's robust statistics.
//! 2. [`policy`] — per-app `max_slowdown` targets.
//! 3. [`controller`] — an [`amem_sim::control::EpochController`] that
//!    interleaves probing with enforcement: violations tighten the
//!    noisiest best-effort app one *notch* (halving its simulated CAT
//!    way allocation and its DRAM token-bucket line rate), comfortable
//!    margins relax one. Every boundary appends to a serializable
//!    decision log the conformance `qos` lane byte-compares.
//! 4. [`scenario`] / [`figures`] — adversarial co-schedules with exact
//!    ground truth (solo vs shared service rate) and the "with
//!    enforcement" twins of the paper's degradation figures.
//!
//! Controller and throttle are execution-time knobs, excluded from every
//! content-addressed cache key by construction (they ride on the engine
//! builder, never on `RunLimit`) — the same rule as `AMEM_HORIZON`.

pub mod controller;
pub mod estimate;
pub mod figures;
pub mod policy;
pub mod scenario;

pub use controller::{CtlApp, Decision, EstimateSnapshot, QosController, QosCtlCfg};
pub use estimate::SlowdownEstimator;
pub use figures::{enforced_sweep, enforcement_table, AppOutcomeRow, EnforcedPoint};
pub use policy::QosPolicy;
pub use scenario::{App, AppKind, AppRate, RunOutcome, Scenario};
