//! MISE-style online slowdown estimation.
//!
//! The estimator follows the alone-request-service-rate idiom of
//! Subramanian et al. (MISE, HPCA 2013 — see PAPERS.md): an application's
//! slowdown under sharing is the ratio of the request service rate it
//! achieves *alone* to the rate it achieves *shared*. The shared rate is
//! free — it is what the app is doing right now. The alone rate is
//! sampled during periodic "alone epochs" in which every co-runner is
//! silenced by a hard bandwidth throttle ([`amem_sim::ThrottleCfg::stall`]).
//!
//! Both rates are EWMA-smoothed; a confidence interval over the recent
//! per-sample ratios is maintained with the same
//! [`amem_core::trial::robust_summary`] machinery the measurement runtime
//! uses (MAD outlier rejection + CI95).
//!
//! Known limitation, shared with MISE: interference that acts purely
//! through shared-cache *capacity* is only partially visible, because a
//! stalled co-runner's lines stay resident during the alone epoch (the
//! victim has no time to re-warm a large working set). Queueing/bandwidth
//! interference — the dominant effect for DRAM-bound victims — is
//! captured accurately. DESIGN.md §16 quantifies this.

use amem_core::trial::{robust_summary, TrialSummary};

/// Online slowdown estimate for one application.
#[derive(Debug, Clone)]
pub struct SlowdownEstimator {
    /// EWMA weight of the newest sample, in (0, 1].
    alpha: f64,
    /// Ratio observations kept for the CI (newest last, bounded).
    window: usize,
    shared_ewma: Option<f64>,
    alone_ewma: Option<f64>,
    ratios: Vec<f64>,
}

impl SlowdownEstimator {
    pub fn new(alpha: f64, window: usize) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA weight out of range");
        assert!(window >= 4, "CI window too small");
        Self {
            alpha,
            window,
            shared_ewma: None,
            alone_ewma: None,
            ratios: Vec::new(),
        }
    }

    fn ewma(slot: &mut Option<f64>, alpha: f64, x: f64) -> f64 {
        let v = match *slot {
            Some(prev) => prev + alpha * (x - prev),
            None => x,
        };
        *slot = Some(v);
        v
    }

    fn push_ratio(&mut self, r: f64) {
        if !r.is_finite() {
            return;
        }
        if self.ratios.len() == self.window {
            self.ratios.remove(0);
        }
        self.ratios.push(r);
    }

    /// Feed one shared-epoch service-rate sample (requests per cycle).
    pub fn observe_shared(&mut self, rate: f64) {
        if !(rate.is_finite() && rate > 0.0) {
            return;
        }
        Self::ewma(&mut self.shared_ewma, self.alpha, rate);
        if let Some(alone) = self.alone_ewma {
            self.push_ratio(alone / rate);
        }
    }

    /// Feed one alone-epoch service-rate sample (requests per cycle).
    pub fn observe_alone(&mut self, rate: f64) {
        if !(rate.is_finite() && rate > 0.0) {
            return;
        }
        Self::ewma(&mut self.alone_ewma, self.alpha, rate);
        if let Some(shared) = self.shared_ewma {
            self.push_ratio(rate / shared);
        }
    }

    /// Current slowdown estimate: EWMA(alone) / EWMA(shared), or `None`
    /// until both sides have at least one sample.
    pub fn estimate(&self) -> Option<f64> {
        match (self.alone_ewma, self.shared_ewma) {
            (Some(a), Some(s)) if s > 0.0 => Some(a / s),
            _ => None,
        }
    }

    /// Robust statistics over the recent per-sample slowdown ratios:
    /// median, CI95 half-width, outlier counts. `None` until enough
    /// ratios accumulate.
    pub fn summary(&self) -> Option<TrialSummary> {
        robust_summary(&self.ratios, 3.5)
    }

    /// Systematic-error floor on the reported confidence interval, as a
    /// fraction of the estimate.
    ///
    /// The statistical CI over ratio samples shrinks as `1/√n`, but the
    /// estimator carries sampling-independent error that no amount of
    /// sampling removes: alone epochs measure the app in the *shared*
    /// run's cache state (co-runner lines stay resident while they are
    /// stalled), and the probe itself perturbs the schedule. Reporting
    /// the bare statistical CI would therefore become dishonestly narrow
    /// on long runs. 5% matches the residual bias observed against exact
    /// ground truth on bandwidth-mediated mixes (DESIGN.md §16).
    pub const SYS_ERR_FRAC: f64 = 0.05;

    /// CI95 half-width of the slowdown estimate: the statistical CI over
    /// the recent ratio window, floored at [`Self::SYS_ERR_FRAC`] of the
    /// current estimate. `None` until an estimate exists.
    pub fn ci95_half(&self) -> Option<f64> {
        let est = self.estimate()?;
        let stat = self.summary().map(|s| s.ci95_half).unwrap_or(0.0);
        Some(stat.max(Self::SYS_ERR_FRAC * est))
    }

    /// Number of ratio observations currently in the CI window.
    pub fn samples(&self) -> usize {
        self.ratios.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_both_sides() {
        let mut e = SlowdownEstimator::new(0.3, 16);
        assert_eq!(e.estimate(), None);
        e.observe_shared(0.01);
        assert_eq!(e.estimate(), None);
        e.observe_alone(0.02);
        let est = e.estimate().unwrap();
        assert!((est - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_degenerate_samples() {
        let mut e = SlowdownEstimator::new(0.3, 16);
        e.observe_shared(f64::NAN);
        e.observe_shared(0.0);
        e.observe_alone(f64::INFINITY);
        assert_eq!(e.estimate(), None);
    }

    #[test]
    fn converges_to_the_true_ratio() {
        let mut e = SlowdownEstimator::new(0.3, 32);
        for _ in 0..50 {
            e.observe_shared(0.004);
            e.observe_alone(0.006);
        }
        let est = e.estimate().unwrap();
        assert!((est - 1.5).abs() < 1e-9, "estimate {est}");
        let s = e.summary().unwrap();
        assert!((s.median - 1.5).abs() < 0.01);
    }
}
