//! The sharded executor pool.
//!
//! Each shard owns the `Executor`s for the request keys routed to it
//! (`fnv1a(route_key) % shards`, the same content hash the cache layer
//! uses). Routing by request content — not by connection — is what
//! generalizes the executor's in-flight dedup across the whole service:
//! two clients on different connections submitting the same sweep hash
//! to the same shard, reach the *same* `Executor` instance, and the
//! second joins the first's in-flight simulation instead of repeating it.
//!
//! Within a shard, executors are keyed by platform identity (machine
//! config + fault spec): the executor's own cache keys already encode
//! machine and workload, so sharing one executor across workloads is
//! safe, but a fault-injected platform must never serve clean requests.
//! All executors share the daemon's one cache directory, making every
//! disk entry visible fleet-wide.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

use amem_core::fault::{FaultSpec, FaultyPlatform};
use amem_core::platform::SimPlatform;
use amem_core::{AmemError, CacheStats, Executor};
use amem_sim::config::MachineConfig;
use amem_sim::fingerprint::fnv1a;

use crate::protocol::JobSpec;

struct Shard {
    executors: Mutex<HashMap<String, Arc<Executor>>>,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, HashMap<String, Arc<Executor>>> {
        // Poison-tolerant, like every lock in the daemon: a job that
        // panicked while touching this map must not take the shard down.
        self.executors.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// All shards plus the cache directory their executors share.
pub struct ShardPool {
    shards: Vec<Shard>,
    cache_dir: Option<PathBuf>,
}

impl ShardPool {
    /// `cache_dir = None` builds memory-only executors (tests; nothing
    /// persists, dedup still spans connections).
    pub fn new(shards: usize, cache_dir: Option<PathBuf>) -> Self {
        let n = shards.max(1);
        Self {
            shards: (0..n)
                .map(|_| Shard {
                    executors: Mutex::new(HashMap::new()),
                })
                .collect(),
            cache_dir,
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a job's request key routes to.
    pub fn route(&self, spec: &JobSpec) -> usize {
        (fnv1a(spec.route_key().as_bytes()) % self.shards.len() as u64) as usize
    }

    /// The shard-owned executor for this job, created on first use.
    /// Identical (machine, fault) requests on one shard always get the
    /// same instance — that identity is the cross-connection dedup.
    pub fn executor(
        &self,
        spec: &JobSpec,
        fault: Option<&str>,
    ) -> Result<Arc<Executor>, AmemError> {
        let machine = match spec {
            JobSpec::Measure { machine, .. }
            | JobSpec::Sweep { machine, .. }
            | JobSpec::Calibrate { machine, .. } => machine.clone(),
            // Curve jobs carry no machine: the traversal is a pure
            // function of the request. Any platform identity works; keep
            // them all on one so curve dedup spans connections too.
            JobSpec::Curve { .. } => MachineConfig::xeon20mb(),
        };
        let fault_spec = fault.map(FaultSpec::parse).transpose()?;
        let identity = format!(
            "{}|fault={}",
            amem_sim::canonical_json(&machine),
            fault.unwrap_or("-")
        );
        let shard = &self.shards[self.route(spec)];
        let mut executors = shard.lock();
        if let Some(exec) = executors.get(&identity) {
            return Ok(Arc::clone(exec));
        }
        let exec = match fault_spec {
            // Fault-injected platforms report non-deterministic, so the
            // executor never caches (or cross-caches) injected results.
            Some(fs) => self.build(FaultyPlatform::new(SimPlatform::new(machine), fs)),
            None => self.build(SimPlatform::new(machine)),
        };
        let exec = Arc::new(exec);
        executors.insert(identity, Arc::clone(&exec));
        Ok(exec)
    }

    fn build(&self, platform: impl amem_core::Platform + 'static) -> Executor {
        match &self.cache_dir {
            Some(dir) => Executor::with_cache_dir(platform, dir.clone()),
            None => Executor::memory_only(platform),
        }
    }

    /// Aggregate cache stats across every executor on every shard, plus
    /// the executor count. This is the service-wide hit rate the daemon
    /// exports.
    pub fn aggregate_stats(&self) -> (CacheStats, usize) {
        let mut total: Option<CacheStats> = None;
        let mut count = 0usize;
        for shard in &self.shards {
            for exec in shard.lock().values() {
                let s = exec.stats();
                count += 1;
                total = Some(match total.take() {
                    None => s,
                    Some(t) => merge(t, s),
                });
            }
        }
        (total.unwrap_or_else(empty_stats), count)
    }
}

fn empty_stats() -> CacheStats {
    CacheStats {
        sim_runs: 0,
        mem_hits: 0,
        disk_hits: 0,
        dedup_hits: 0,
        stores: 0,
        curves: None,
    }
}

fn merge(mut a: CacheStats, b: CacheStats) -> CacheStats {
    a.sim_runs += b.sim_runs;
    a.mem_hits += b.mem_hits;
    a.disk_hits += b.disk_hits;
    a.dedup_hits += b.dedup_hits;
    a.stores += b.stores;
    a.curves = match (a.curves.take(), b.curves) {
        (None, c) => c,
        (c, None) => c,
        (Some(mut x), Some(y)) => {
            x.runs += y.runs;
            x.mem_hits += y.mem_hits;
            x.disk_hits += y.disk_hits;
            x.dedup_hits += y.dedup_hits;
            x.stores += y.stores;
            Some(x)
        }
    };
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WorkloadSpec;
    use amem_interfere::{InterferenceKind, InterferenceMix};

    fn cfg() -> MachineConfig {
        MachineConfig::xeon20mb().scaled(0.0625)
    }

    fn sweep_spec(max_count: usize) -> JobSpec {
        JobSpec::Sweep {
            machine: cfg(),
            workload: WorkloadSpec::Probe(amem_core::figures::fig1_probe(&cfg())),
            per_processor: 1,
            kind: InterferenceKind::Storage,
            max_count,
        }
    }

    #[test]
    fn identical_requests_share_one_executor_instance() {
        let pool = ShardPool::new(4, None);
        let a = pool.executor(&sweep_spec(5), None).unwrap();
        let b = pool.executor(&sweep_spec(5), None).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "same request key, same shard, same executor — that IS the dedup"
        );
        // A sweep over the same workload at a different extent still
        // routes to the same executor (extent is not in the route key).
        let c = pool.executor(&sweep_spec(3), None).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn fault_injected_requests_get_a_separate_executor() {
        let pool = ShardPool::new(4, None);
        let clean = pool.executor(&sweep_spec(5), None).unwrap();
        let faulty = pool
            .executor(&sweep_spec(5), Some("seed=1,error=1.0"))
            .unwrap();
        assert!(
            !Arc::ptr_eq(&clean, &faulty),
            "a fault-injected platform must never serve clean requests"
        );
        assert!(pool.executor(&sweep_spec(5), Some("bogus=1")).is_err());
    }

    #[test]
    fn measure_points_route_to_their_sweeps_executor() {
        let pool = ShardPool::new(8, None);
        let point = JobSpec::Measure {
            machine: cfg(),
            workload: WorkloadSpec::Probe(amem_core::figures::fig1_probe(&cfg())),
            per_processor: 1,
            mix: InterferenceMix::storage(2),
        };
        assert_eq!(pool.route(&point), pool.route(&sweep_spec(5)));
        let a = pool.executor(&point, None).unwrap();
        let b = pool.executor(&sweep_spec(5), None).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let pool = ShardPool::new(2, None);
        let exec = pool.executor(&sweep_spec(2), None).unwrap();
        let w = WorkloadSpec::Probe(amem_core::figures::fig1_probe(&cfg())).build();
        exec.run(w.as_ref(), 1, InterferenceMix::none()).unwrap();
        exec.run(w.as_ref(), 1, InterferenceMix::none()).unwrap();
        let (stats, execs) = pool.aggregate_stats();
        assert_eq!(execs, 1);
        assert_eq!(stats.sim_runs, 1);
        assert_eq!(stats.mem_hits, 1);
    }
}
