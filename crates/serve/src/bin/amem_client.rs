//! CLI client for the measurement daemon.
//!
//! ```text
//! amem-client [--addr H:P] [--tenant T] [--priority high|normal|low]
//!             [--fault SPEC] <command> [command flags]
//!
//! commands:
//!   ping                         liveness check
//!   stats [--assert-dedup]      service counters; optionally require
//!                                unique simulations < jobs completed
//!   metrics                      dump the daemon's Prometheus text
//!   shutdown                     drain the daemon and report jobs done
//!   sweep [--scale F] [--csv P] [--local]
//!                                run the fig1-shaped sweep and render
//!                                the paper's table (byte-identical to
//!                                `cargo run --bin fig1`)
//!   measure [--scale F]          one fig1 probe point, no interference
//! ```
//!
//! `sweep --local` runs the library path in-process instead of talking
//! to a daemon — CI diffs the two CSVs to prove byte identity.

use std::io::Write as _;

use amem_core::figures::{fig1_probe, fig1_table, FIG1_MAX_COUNT, FIG1_PER_PROCESSOR};
use amem_core::platform::{ProbeWorkload, SimPlatform};
use amem_core::sweep::run_sweep;
use amem_core::Executor;
use amem_interfere::{InterferenceKind, InterferenceMix};
use amem_serve::protocol::{JobSpec, Priority, WorkloadSpec};
use amem_serve::Client;
use amem_sim::config::MachineConfig;

fn die(msg: &str) -> ! {
    eprintln!("amem-client: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut addr = std::env::var("AMEM_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:4774".into());
    let mut tenant = "default".to_string();
    let mut priority = Priority::Normal;
    let mut fault: Option<String> = None;
    let mut scale = 0.125f64;
    let mut csv: Option<std::path::PathBuf> = None;
    let mut local = false;
    let mut assert_dedup = false;
    let mut command: Option<String> = None;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |what: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{a} needs {what}")))
        };
        match a.as_str() {
            "--addr" => addr = val("host:port"),
            "--tenant" => tenant = val("a name"),
            "--priority" => {
                priority = Priority::parse(&val("high|normal|low")).unwrap_or_else(|e| die(&e));
            }
            "--fault" => fault = Some(val("a FaultSpec")),
            "--scale" => {
                scale = val("a float")
                    .parse()
                    .unwrap_or_else(|_| die("--scale must be a float"));
            }
            "--csv" => csv = Some(std::path::PathBuf::from(val("a path"))),
            "--local" => local = true,
            "--assert-dedup" => assert_dedup = true,
            cmd if command.is_none() && !cmd.starts_with("--") => command = Some(cmd.to_string()),
            other => die(&format!("unknown argument: {other}")),
        }
    }
    let command = command
        .unwrap_or_else(|| die("no command (want ping/stats/metrics/shutdown/sweep/measure)"));

    let machine = MachineConfig::xeon20mb().scaled(scale);
    let connect = |tenant: &str, priority, fault: &Option<String>| -> Client {
        let mut c = Client::connect(&addr)
            .unwrap_or_else(|e| die(&format!("cannot connect to {addr}: {e}")));
        c.tenant = tenant.into();
        c.priority = priority;
        c.fault = fault.clone();
        c
    };

    match command.as_str() {
        "ping" => {
            connect(&tenant, priority, &fault)
                .ping()
                .unwrap_or_else(|e| die(&format!("ping failed: {e}")));
            println!("pong");
        }
        "stats" => {
            let stats = connect(&tenant, priority, &fault)
                .stats()
                .unwrap_or_else(|e| die(&format!("stats failed: {e}")));
            let json = serde_json::to_string_pretty(&stats).expect("stats serialize");
            println!("{json}");
            if assert_dedup {
                let sims = stats.cache.sim_runs;
                let done = stats.jobs_completed;
                if stats.cache.dedup_hits + stats.cache.mem_hits + stats.cache.disk_hits == 0 {
                    die(&format!(
                        "dedup assertion failed: no cache/dedup hits at all \
                         ({sims} sims for {done} jobs)"
                    ));
                }
                println!("[assert-dedup] ok: {sims} unique sims across {done} completed jobs");
            }
        }
        "metrics" => {
            let text = connect(&tenant, priority, &fault)
                .metrics()
                .unwrap_or_else(|e| die(&format!("metrics failed: {e}")));
            print!("{text}");
            let _ = std::io::stdout().flush();
        }
        "shutdown" => {
            let done = connect(&tenant, priority, &fault)
                .shutdown()
                .unwrap_or_else(|e| die(&format!("shutdown failed: {e}")));
            println!("[shutdown] drained; {done} jobs completed over the daemon's lifetime");
        }
        "sweep" => {
            let sweep = if local {
                // The library path, for parity diffs: same executor code,
                // same cache-dir convention ($AMEM_CACHE_DIR), no daemon.
                let exec = Executor::new(SimPlatform::new(machine.clone()));
                run_sweep(
                    &exec,
                    &ProbeWorkload(fig1_probe(&machine)),
                    FIG1_PER_PROCESSOR,
                    InterferenceKind::Storage,
                    FIG1_MAX_COUNT,
                )
                .unwrap_or_else(|e| die(&format!("local sweep failed: {e}")))
            } else {
                connect(&tenant, priority, &fault)
                    .sweep(JobSpec::Sweep {
                        machine: machine.clone(),
                        workload: WorkloadSpec::Probe(fig1_probe(&machine)),
                        per_processor: FIG1_PER_PROCESSOR,
                        kind: InterferenceKind::Storage,
                        max_count: FIG1_MAX_COUNT,
                    })
                    .unwrap_or_else(|e| die(&format!("sweep failed: {e}")))
            };
            let table = fig1_table(&machine, &sweep);
            println!("{}", table.render());
            if let Some(path) = csv {
                table
                    .write_csv(&path)
                    .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
                println!("[csv] {}", path.display());
            }
        }
        "measure" => {
            let m = if local {
                let exec = Executor::new(SimPlatform::new(machine.clone()));
                let m = exec
                    .run(
                        &ProbeWorkload(fig1_probe(&machine)),
                        FIG1_PER_PROCESSOR,
                        InterferenceMix::none(),
                    )
                    .unwrap_or_else(|e| die(&format!("local measure failed: {e}")));
                (*m).clone()
            } else {
                connect(&tenant, priority, &fault)
                    .measure(JobSpec::Measure {
                        machine: machine.clone(),
                        workload: WorkloadSpec::Probe(fig1_probe(&machine)),
                        per_processor: FIG1_PER_PROCESSOR,
                        mix: InterferenceMix::none(),
                    })
                    .unwrap_or_else(|e| die(&format!("measure failed: {e}")))
            };
            println!(
                "{}",
                serde_json::to_string(&m).expect("measurement serialize")
            );
        }
        other => die(&format!(
            "unknown command '{other}' (want ping/stats/metrics/shutdown/sweep/measure)"
        )),
    }
}
