//! The measurement daemon.
//!
//! ```text
//! amem-serve [--addr H:P] [--port-file PATH] [--workers N] [--shards N]
//!            [--cache-dir DIR] [--state-dir DIR]
//!            [--max-cache-mb N] [--max-cache-age-secs N]
//!            [--quota-rate R] [--quota-burst B]
//!            [--metrics] [--allow-fault]
//! ```
//!
//! Binds, prints `[serve] listening on <addr>` (and optionally writes the
//! resolved address to `--port-file`, for scripts binding port 0), then
//! serves until a client sends `Shutdown` — which drains every queued job
//! before the acknowledgment goes out.

use std::path::PathBuf;

use amem_serve::server::{ServeConfig, Server};

fn main() {
    let mut cfg = ServeConfig::default();
    let mut port_file: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |what: &str| it.next().unwrap_or_else(|| panic!("{a} needs {what}"));
        match a.as_str() {
            "--addr" => cfg.addr = val("host:port"),
            "--port-file" => port_file = Some(PathBuf::from(val("a path"))),
            "--workers" => cfg.workers = val("a count").parse().expect("--workers: integer"),
            "--shards" => cfg.shards = val("a count").parse().expect("--shards: integer"),
            "--cache-dir" => cfg.cache_dir = Some(PathBuf::from(val("a dir"))),
            "--state-dir" => cfg.state_dir = Some(PathBuf::from(val("a dir"))),
            "--max-cache-mb" => {
                let mb: u64 = val("megabytes").parse().expect("--max-cache-mb: integer");
                cfg.store.max_bytes = Some(mb * (1 << 20));
            }
            "--max-cache-age-secs" => {
                cfg.store.max_age_secs = Some(
                    val("seconds")
                        .parse()
                        .expect("--max-cache-age-secs: integer"),
                );
            }
            "--quota-rate" => {
                cfg.quota.rate_per_sec = val("jobs/sec").parse().expect("--quota-rate: float");
            }
            "--quota-burst" => {
                cfg.quota.burst = val("a burst size").parse().expect("--quota-burst: float");
            }
            "--metrics" => cfg.metrics = true,
            "--allow-fault" => cfg.allow_fault = true,
            other => {
                eprintln!(
                    "unknown argument: {other} (expected --addr/--port-file/--workers/--shards/\
                     --cache-dir/--state-dir/--max-cache-mb/--max-cache-age-secs/--quota-rate/\
                     --quota-burst/--metrics/--allow-fault)"
                );
                std::process::exit(2);
            }
        }
    }
    // No cache dir on the command line: fall back to the library's
    // environment convention so daemon and library share entries.
    if cfg.cache_dir.is_none() {
        if let Ok(dir) = std::env::var("AMEM_CACHE_DIR") {
            if !dir.is_empty() {
                cfg.cache_dir = Some(PathBuf::from(dir));
            }
        }
    }
    if cfg.store.max_bytes.is_none() && cfg.store.max_age_secs.is_none() && cfg.cache_dir.is_some()
    {
        eprintln!(
            "[serve] note: shared store is unbounded (no --max-cache-mb/--max-cache-age-secs)"
        );
    }

    let server = Server::start(cfg).expect("bind and start the daemon");
    let addr = server.addr();
    println!("[serve] listening on {addr}");
    if server.recovered_jobs() > 0 {
        println!(
            "[serve] recovered {} job record(s) orphaned by a previous run",
            server.recovered_jobs()
        );
    }
    if let Some(path) = port_file {
        std::fs::write(&path, addr.to_string()).expect("write --port-file");
    }
    let stats = server.wait();
    println!(
        "[serve] drained: {} jobs completed, {} failed, cache hit rate {:.1}%",
        stats.jobs_completed,
        stats.jobs_failed,
        stats.hit_rate_percent()
    );
}
