//! Wire protocol: newline-delimited JSON over TCP, schema-versioned.
//!
//! One request per line, one response per line, in order. The payload
//! types reuse the library's own serializations (`Measurement`, `Sweep`,
//! `CapacityMap`, `MissRatioCurve`), which is what makes the daemon's
//! results byte-identical to library calls: the server serializes the
//! exact structs the `Executor` returned, and a client reprint of those
//! structs is the same text a local run would have produced
//! (DESIGN.md §15).

use std::io::{BufRead, Write};

use amem_core::curve::CurveRequest;
use amem_core::platform::{LuleshWorkload, McbWorkload, Measurement, ProbeWorkload, Workload};
use amem_core::{CacheStats, CapacityMap, MissRatioCurve, Sweep};
use amem_interfere::{InterferenceKind, InterferenceMix};
use amem_miniapps::{LuleshCfg, McbCfg};
use amem_probes::probe::ProbeCfg;
use amem_sim::config::MachineConfig;
use serde::{Deserialize, Serialize};

/// Bumped on any incompatible wire change; the server rejects mismatched
/// requests with a typed error instead of guessing.
pub const PROTOCOL_VERSION: u32 = 1;

/// Scheduling class. Within one priority, jobs run FIFO per tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Priority {
    High,
    #[default]
    Normal,
    Low,
}

impl Priority {
    /// Lane index, highest first.
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "high" => Ok(Priority::High),
            "normal" => Ok(Priority::Normal),
            "low" => Ok(Priority::Low),
            other => Err(format!("unknown priority '{other}' (want high/normal/low)")),
        }
    }
}

/// A workload by configuration — the same configs the library's
/// `Workload` impls wrap, so the daemon builds the identical workload
/// (and therefore the identical cache key) a library caller would.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WorkloadSpec {
    Mcb(McbCfg),
    Lulesh(LuleshCfg),
    Probe(ProbeCfg),
}

impl WorkloadSpec {
    /// Instantiate the library workload this spec describes.
    pub fn build(&self) -> Box<dyn Workload> {
        match self {
            WorkloadSpec::Mcb(cfg) => Box::new(McbWorkload(*cfg)),
            WorkloadSpec::Lulesh(cfg) => Box::new(LuleshWorkload(*cfg)),
            WorkloadSpec::Probe(cfg) => Box::new(ProbeWorkload(*cfg)),
        }
    }
}

/// One unit of measurement work. Every variant maps 1:1 onto a library
/// entry point (`Executor::run`, `run_sweep`, `CapacityMap::calibrate`,
/// `Executor::run_curve`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JobSpec {
    Measure {
        machine: MachineConfig,
        workload: WorkloadSpec,
        per_processor: usize,
        mix: InterferenceMix,
    },
    Sweep {
        machine: MachineConfig,
        workload: WorkloadSpec,
        per_processor: usize,
        kind: InterferenceKind,
        max_count: usize,
    },
    Calibrate {
        machine: MachineConfig,
        max_cs: usize,
    },
    Curve {
        request: CurveRequest,
    },
}

impl JobSpec {
    /// Short kind tag for metrics labels and job records.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Measure { .. } => "measure",
            JobSpec::Sweep { .. } => "sweep",
            JobSpec::Calibrate { .. } => "calibrate",
            JobSpec::Curve { .. } => "curve",
        }
    }

    /// The routing key: requests for the same measurement content must
    /// land on the same shard, so they reach the same shard-owned
    /// `Executor` and its in-flight dedup. A measure point and the sweep
    /// that contains it share a key on purpose — interference level and
    /// sweep extent are deliberately excluded so overlapping work
    /// converges on one executor.
    pub fn route_key(&self) -> String {
        match self {
            JobSpec::Measure {
                machine,
                workload,
                per_processor,
                ..
            } => {
                let w = workload.build();
                format!(
                    "{}|{}|pp={per_processor}",
                    amem_sim::canonical_json(machine),
                    w.cache_key().unwrap_or_else(|| w.name()),
                )
            }
            JobSpec::Sweep {
                machine,
                workload,
                per_processor,
                ..
            } => {
                let w = workload.build();
                format!(
                    "{}|{}|pp={per_processor}",
                    amem_sim::canonical_json(machine),
                    w.cache_key().unwrap_or_else(|| w.name()),
                )
            }
            JobSpec::Calibrate { machine, .. } => amem_sim::canonical_json(machine),
            JobSpec::Curve { request } => format!("curve|{}", amem_sim::canonical_json(request)),
        }
    }
}

/// What the client wants done on this line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Command {
    /// Liveness check; answered inline by the frontend.
    Ping,
    /// Service-wide counters and aggregated cache stats.
    Stats,
    /// Prometheus text of the daemon's metrics registry.
    Metrics,
    /// Drain: finish everything queued, refuse new jobs, then exit.
    Shutdown,
    /// Enqueue a measurement job and wait for its result. Boxed: a
    /// `JobSpec` embeds a full `MachineConfig`, and `Ping` shouldn't pay
    /// for it.
    Submit(Box<JobSpec>),
}

/// One request line.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Must equal [`PROTOCOL_VERSION`].
    pub v: u32,
    /// Quota accounting identity; any non-empty string.
    pub tenant: String,
    pub priority: Priority,
    /// Test-only deterministic fault injection for this job's executor
    /// (`FaultSpec` syntax). Only honored when the daemon was started
    /// with fault injection allowed; injected results are never cached.
    pub fault: Option<String>,
    pub command: Command,
}

impl Request {
    /// A plain request with default tenant/priority.
    pub fn new(command: Command) -> Self {
        Self {
            v: PROTOCOL_VERSION,
            tenant: "default".into(),
            priority: Priority::Normal,
            fault: None,
            command,
        }
    }
}

/// One response line: either `result` or `error` is set, never both.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    pub v: u32,
    /// Durable job id (0 for control commands).
    pub id: u64,
    pub error: Option<String>,
    pub result: Option<JobResult>,
}

impl Response {
    pub fn ok(id: u64, result: JobResult) -> Self {
        Self {
            v: PROTOCOL_VERSION,
            id,
            error: None,
            result: Some(result),
        }
    }

    pub fn err(id: u64, error: impl Into<String>) -> Self {
        Self {
            v: PROTOCOL_VERSION,
            id,
            error: Some(error.into()),
            result: None,
        }
    }
}

/// A successful result payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JobResult {
    Pong,
    Measurement(Measurement),
    Sweep(Sweep),
    Capacity(CapacityMap),
    Curve(MissRatioCurve),
    Stats(ServeStats),
    Metrics {
        text: String,
    },
    /// Shutdown acknowledged after the queue fully drained.
    Drained {
        jobs_completed: u64,
    },
}

/// Service-wide counters, plus cache stats aggregated over every
/// shard-owned executor (the denominator of the exported hit rate).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeStats {
    /// Request lines received, all kinds.
    pub requests: u64,
    pub jobs_submitted: u64,
    pub jobs_completed: u64,
    pub jobs_failed: u64,
    /// Jobs currently queued (not yet picked up by a worker).
    pub queue_depth: u64,
    /// Times the scheduler skipped a job because its tenant was over
    /// its token-bucket quota.
    pub quota_deferrals: u64,
    pub shards: usize,
    /// Executors instantiated across all shards.
    pub executors: usize,
    /// Aggregated measurement-cache stats across all executors.
    pub cache: CacheStats,
    /// Shared-store footprint (entries / bytes) at last scan.
    pub store_entries: u64,
    pub store_bytes: u64,
    /// Entries evicted for the size cap and the age cap.
    pub evictions_size: u64,
    pub evictions_age: u64,
    /// Orphaned tmp scratch files reclaimed at startup.
    pub tmp_reclaimed: u64,
    pub uptime_secs: f64,
}

impl ServeStats {
    /// Cache hit rate in percent over all executor lookups.
    pub fn hit_rate_percent(&self) -> f64 {
        100.0 * self.cache.hit_rate()
    }
}

/// Serialize one message as a JSON line and flush it.
pub fn write_line<W: Write, T: Serialize>(w: &mut W, msg: &T) -> std::io::Result<()> {
    let mut line = serde_json::to_string(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Read one JSON-line message; `Ok(None)` on clean EOF. Blank lines are
/// skipped so interactive use (telnet, netcat) stays forgiving.
pub fn read_line<R: BufRead, T: Deserialize>(r: &mut R) -> std::io::Result<Option<T>> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        if !line.trim().is_empty() {
            break;
        }
    }
    serde_json::from_str(line.trim())
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        let cfg = MachineConfig::xeon20mb().scaled(0.0625);
        let req = Request {
            v: PROTOCOL_VERSION,
            tenant: "t0".into(),
            priority: Priority::High,
            fault: Some("seed=1,panic=1.0".into()),
            command: Command::Submit(Box::new(JobSpec::Sweep {
                machine: cfg.clone(),
                workload: WorkloadSpec::Probe(amem_core::figures::fig1_probe(&cfg)),
                per_processor: 1,
                kind: InterferenceKind::Storage,
                max_count: 5,
            })),
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        assert_eq!(back.priority, Priority::High);
        match back.command {
            Command::Submit(spec) => {
                assert_eq!(spec.kind(), "sweep");
                assert_eq!(spec.route_key(), req_route_key(&req));
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    fn req_route_key(req: &Request) -> String {
        match &req.command {
            Command::Submit(spec) => spec.route_key(),
            _ => unreachable!(),
        }
    }

    #[test]
    fn overlapping_measure_and_sweep_share_a_route_key() {
        let cfg = MachineConfig::xeon20mb().scaled(0.0625);
        let w = WorkloadSpec::Probe(amem_core::figures::fig1_probe(&cfg));
        let measure = JobSpec::Measure {
            machine: cfg.clone(),
            workload: w.clone(),
            per_processor: 1,
            mix: InterferenceMix::storage(3),
        };
        let sweep = JobSpec::Sweep {
            machine: cfg.clone(),
            workload: w,
            per_processor: 1,
            kind: InterferenceKind::Storage,
            max_count: 5,
        };
        assert_eq!(
            measure.route_key(),
            sweep.route_key(),
            "a point and the sweep containing it must share an executor"
        );
    }

    #[test]
    fn line_codec_round_trips_and_skips_blanks() {
        let mut buf = Vec::new();
        write_line(&mut buf, &Response::ok(7, JobResult::Pong)).unwrap();
        buf.splice(0..0, b"\n  \n".iter().copied());
        let mut r = std::io::BufReader::new(&buf[..]);
        let resp: Response = read_line(&mut r).unwrap().expect("one message");
        assert_eq!(resp.id, 7);
        assert!(matches!(resp.result, Some(JobResult::Pong)));
        let eof: Option<Response> = read_line(&mut r).unwrap();
        assert!(eof.is_none(), "clean EOF");
    }

    #[test]
    fn version_and_priority_parse() {
        assert_eq!(Priority::parse("high").unwrap().lane(), 0);
        assert_eq!(Priority::parse("normal").unwrap().lane(), 1);
        assert_eq!(Priority::parse("low").unwrap().lane(), 2);
        assert!(Priority::parse("urgent").is_err());
        assert_eq!(Priority::default(), Priority::Normal);
    }
}
