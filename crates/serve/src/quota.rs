//! Per-tenant token-bucket admission.
//!
//! Each tenant owns a bucket holding up to `burst` tokens, refilled at
//! `rate_per_sec`. Dispatching one job costs one token; a tenant with an
//! empty bucket is *deferred* — its jobs stay queued (in order) while
//! other tenants' work proceeds, so a chatty client cannot starve the
//! fleet. Time is passed in as `f64` seconds so tests drive a manual
//! clock deterministically.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Refill rate and burst capacity applied to every tenant.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QuotaConfig {
    /// Tokens per second. Zero or negative disables quotas (always admit).
    pub rate_per_sec: f64,
    /// Bucket capacity (maximum burst).
    pub burst: f64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        // Generous: enough that single-host test fleets never throttle
        // unless a test asks for it.
        Self {
            rate_per_sec: 200.0,
            burst: 400.0,
        }
    }
}

impl QuotaConfig {
    /// No throttling at all.
    pub fn unlimited() -> Self {
        Self {
            rate_per_sec: 0.0,
            burst: 0.0,
        }
    }

    fn enabled(&self) -> bool {
        self.rate_per_sec > 0.0
    }
}

#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    last_secs: f64,
}

impl TokenBucket {
    fn new(cfg: &QuotaConfig, now_secs: f64) -> Self {
        Self {
            tokens: cfg.burst,
            last_secs: now_secs,
        }
    }

    /// Refill for elapsed time, then try to spend one token.
    fn try_take(&mut self, cfg: &QuotaConfig, now_secs: f64) -> bool {
        let dt = (now_secs - self.last_secs).max(0.0);
        self.tokens = (self.tokens + dt * cfg.rate_per_sec).min(cfg.burst);
        self.last_secs = now_secs;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// All tenants' buckets. Poison-tolerant: a panicking worker thread must
/// never wedge admission for everyone else.
pub struct TenantQuotas {
    cfg: QuotaConfig,
    epoch: Instant,
    buckets: Mutex<HashMap<String, TokenBucket>>,
}

impl TenantQuotas {
    pub fn new(cfg: QuotaConfig) -> Self {
        Self {
            cfg,
            epoch: Instant::now(),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Wall-clock seconds since the quota epoch.
    pub fn now_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Admit one job for `tenant` at the current time.
    pub fn admit(&self, tenant: &str) -> bool {
        self.admit_at(tenant, self.now_secs())
    }

    /// Admit one job for `tenant` at an explicit clock (tests).
    pub fn admit_at(&self, tenant: &str, now_secs: f64) -> bool {
        if !self.cfg.enabled() {
            return true;
        }
        let mut buckets = self.buckets.lock().unwrap_or_else(|p| p.into_inner());
        buckets
            .entry(tenant.to_string())
            .or_insert_with(|| TokenBucket::new(&self.cfg, now_secs))
            .try_take(&self.cfg, now_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quotas(rate: f64, burst: f64) -> TenantQuotas {
        TenantQuotas::new(QuotaConfig {
            rate_per_sec: rate,
            burst,
        })
    }

    #[test]
    fn burst_then_refill() {
        let q = quotas(1.0, 2.0);
        // Full bucket: two immediate admissions, then empty.
        assert!(q.admit_at("a", 0.0));
        assert!(q.admit_at("a", 0.0));
        assert!(!q.admit_at("a", 0.0));
        // Half a token after 0.5s is still not one token.
        assert!(!q.admit_at("a", 0.5));
        // 1 token/s refills past one by t=1.6 (0.5 + 1.1 elapsed).
        assert!(q.admit_at("a", 1.6));
        assert!(!q.admit_at("a", 1.6));
    }

    #[test]
    fn tenants_are_isolated() {
        let q = quotas(1.0, 1.0);
        assert!(q.admit_at("a", 0.0));
        assert!(!q.admit_at("a", 0.0), "a exhausted its bucket");
        assert!(q.admit_at("b", 0.0), "b is unaffected by a's burst");
    }

    #[test]
    fn refill_caps_at_burst() {
        let q = quotas(100.0, 2.0);
        assert!(q.admit_at("a", 0.0));
        assert!(q.admit_at("a", 0.0));
        // A long idle period refills to burst (2), not rate × dt (100k).
        for _ in 0..2 {
            assert!(q.admit_at("a", 1000.0));
        }
        assert!(!q.admit_at("a", 1000.0));
    }

    #[test]
    fn zero_rate_disables_quotas() {
        let q = TenantQuotas::new(QuotaConfig::unlimited());
        for _ in 0..10_000 {
            assert!(q.admit_at("a", 0.0));
        }
    }

    #[test]
    fn poisoned_bucket_map_recovers() {
        let q = std::sync::Arc::new(quotas(1.0, 1.0));
        assert!(q.admit_at("a", 0.0));
        let q2 = std::sync::Arc::clone(&q);
        // Poison the mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = q2.buckets.lock().unwrap();
            panic!("poison");
        })
        .join();
        // Admission still works: the poison is shrugged off.
        assert!(q.admit_at("b", 0.0));
    }
}
