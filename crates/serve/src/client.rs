//! A blocking client for the daemon's JSON-lines protocol.
//!
//! One `Client` holds one TCP connection; requests are serialized on the
//! wire in order, and each call blocks until its response line arrives.
//! For concurrent jobs open several clients — the daemon's frontends are
//! stateless, so dedup and quotas behave identically either way.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

use amem_core::{CapacityMap, Measurement, MissRatioCurve, Sweep};

use crate::protocol::{
    read_line, write_line, Command, JobResult, JobSpec, Priority, Request, Response, ServeStats,
    PROTOCOL_VERSION,
};

/// A connected client. Tenant/priority/fault are connection-level
/// defaults stamped onto every request it sends.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Quota identity sent with every request.
    pub tenant: String,
    pub priority: Priority,
    /// Test-only fault spec forwarded with submissions (the daemon
    /// refuses it unless started with fault injection allowed).
    pub fault: Option<String>,
}

fn bad_data(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
            tenant: "default".into(),
            priority: Priority::Normal,
            fault: None,
        })
    }

    /// Send one command and wait for its response line.
    pub fn request(&mut self, command: Command) -> std::io::Result<Response> {
        let req = Request {
            v: PROTOCOL_VERSION,
            tenant: self.tenant.clone(),
            priority: self.priority,
            fault: self.fault.clone(),
            command,
        };
        write_line(&mut self.writer, &req)?;
        read_line(&mut self.reader)?
            .ok_or_else(|| bad_data("connection closed before a response arrived"))
    }

    /// Send a command and unwrap the success payload; the daemon's typed
    /// error (quota refusal, job failure, version mismatch) becomes an
    /// `InvalidData` error carrying its message.
    fn expect_ok(&mut self, command: Command) -> std::io::Result<JobResult> {
        let resp = self.request(command)?;
        match (resp.result, resp.error) {
            (Some(result), _) => Ok(result),
            (None, Some(error)) => Err(bad_data(error)),
            (None, None) => Err(bad_data("malformed response: neither result nor error")),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> std::io::Result<()> {
        match self.expect_ok(Command::Ping)? {
            JobResult::Pong => Ok(()),
            other => Err(bad_data(format!("expected Pong, got {other:?}"))),
        }
    }

    /// Service-wide counters and aggregated cache stats.
    pub fn stats(&mut self) -> std::io::Result<ServeStats> {
        match self.expect_ok(Command::Stats)? {
            JobResult::Stats(s) => Ok(s),
            other => Err(bad_data(format!("expected Stats, got {other:?}"))),
        }
    }

    /// Prometheus text of the daemon's metrics registry.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        match self.expect_ok(Command::Metrics)? {
            JobResult::Metrics { text } => Ok(text),
            other => Err(bad_data(format!("expected Metrics, got {other:?}"))),
        }
    }

    /// Drain the daemon: blocks until every queued job finished, then
    /// returns how many jobs the daemon completed over its lifetime.
    pub fn shutdown(&mut self) -> std::io::Result<u64> {
        match self.expect_ok(Command::Shutdown)? {
            JobResult::Drained { jobs_completed } => Ok(jobs_completed),
            other => Err(bad_data(format!("expected Drained, got {other:?}"))),
        }
    }

    /// Submit any job and wait for its raw result.
    pub fn submit(&mut self, spec: JobSpec) -> std::io::Result<JobResult> {
        self.expect_ok(Command::Submit(Box::new(spec)))
    }

    /// Submit a measure job; the returned `Measurement` is byte-identical
    /// to what a local `Executor::run` would have produced.
    pub fn measure(&mut self, spec: JobSpec) -> std::io::Result<Measurement> {
        match self.submit(spec)? {
            JobResult::Measurement(m) => Ok(m),
            other => Err(bad_data(format!("expected Measurement, got {other:?}"))),
        }
    }

    /// Submit a sweep job.
    pub fn sweep(&mut self, spec: JobSpec) -> std::io::Result<Sweep> {
        match self.submit(spec)? {
            JobResult::Sweep(s) => Ok(s),
            other => Err(bad_data(format!("expected Sweep, got {other:?}"))),
        }
    }

    /// Submit a calibrate job.
    pub fn calibrate(&mut self, spec: JobSpec) -> std::io::Result<CapacityMap> {
        match self.submit(spec)? {
            JobResult::Capacity(c) => Ok(c),
            other => Err(bad_data(format!("expected Capacity, got {other:?}"))),
        }
    }

    /// Submit a curve job.
    pub fn curve(&mut self, spec: JobSpec) -> std::io::Result<MissRatioCurve> {
        match self.submit(spec)? {
            JobResult::Curve(c) => Ok(c),
            other => Err(bad_data(format!("expected Curve, got {other:?}"))),
        }
    }
}
