//! `amem-serve` — a sharded measurement service over the executor.
//!
//! The paper's workflow (Casas & Bronevetsky, IPDPS 2014) assumes one
//! process owning one cache. This crate turns that into a long-running
//! daemon shared by many clients, without changing a single result byte:
//!
//! - **Stateless frontends** ([`server`]): one thread per TCP connection,
//!   speaking JSON lines (see [`protocol`]). Frontends parse, journal a
//!   durable [`job::JobRecord`], enqueue, and block on the result.
//! - **Priority scheduler** ([`scheduler`] + [`quota`]): three FIFO
//!   lanes with per-tenant token buckets; throttled tenants defer in
//!   place, they are never reordered and never starve others.
//! - **Sharded executors** ([`shard`]): request keys route by content
//!   hash to a shard-owned [`amem_core::Executor`], so the executor's
//!   in-flight dedup holds across *all* connections — two clients
//!   submitting the same sweep share one simulation.
//! - **Shared store** ([`store`]): one disk-cache directory for every
//!   executor, with crash-debris reclamation, size/age eviction and
//!   hit-rate telemetry through `amem-metrics`.
//!
//! Results are byte-identical to library calls: the daemon runs the same
//! `Executor` code against the same cache keys and serializes the very
//! structs it returns, and the vendored JSON writer reprints parsed
//! floats exactly. `cargo run --bin serve` (amem-bench) and the CI
//! serve-smoke job both assert this end to end.
//!
//! Everything here is std-only networking — `TcpListener`, threads,
//! condvars — because the container has no async runtime. At this
//! problem's scale (seconds-long simulations, tens of connections) a
//! thread per connection is the simpler and equally correct choice.

pub mod client;
pub mod job;
pub mod protocol;
pub mod quota;
pub mod scheduler;
pub mod server;
pub mod shard;
pub mod store;

pub use client::Client;
pub use job::{JobRecord, JobStatus, JobStore, JOB_SCHEMA_VERSION};
pub use protocol::{
    Command, JobResult, JobSpec, Priority, Request, Response, ServeStats, WorkloadSpec,
    PROTOCOL_VERSION,
};
pub use quota::QuotaConfig;
pub use server::{ServeConfig, Server};
pub use shard::ShardPool;
pub use store::{CacheStore, StorePolicy, StoreUsage};
