//! The shared measurement store: the executor's content-addressed disk
//! cache promoted to a managed, bounded resource.
//!
//! The daemon's shards all point their executors at one directory, so
//! every entry any job persists is visible to every later job on any
//! connection. This module adds what a long-running shared store needs
//! that a per-run cache does not: startup reclamation of crash debris
//! (orphaned `*.tmp.*` scratch files), size- and age-based eviction, and
//! footprint/eviction telemetry through `amem-metrics`.
//!
//! Eviction is safe by construction: executors treat a missing entry as
//! an ordinary miss and re-simulate, so removing a file can never break
//! correctness — only cost one repeat simulation.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

use amem_core::{sweep_stale_tmp, STALE_TMP_AGE};
use serde::{Deserialize, Serialize};

/// Bounds applied by [`CacheStore::evict`]. `None` disables a bound.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StorePolicy {
    /// Evict oldest-first once the store exceeds this many bytes.
    pub max_bytes: Option<u64>,
    /// Evict entries older than this many seconds.
    pub max_age_secs: Option<u64>,
    /// Age below which an orphaned tmp file is presumed to be a live
    /// writer's (startup sweep threshold). `None` = the library default.
    pub tmp_max_age_secs: Option<u64>,
}

/// Counters one eviction pass (or the lifetime of the store) produces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreUsage {
    pub entries: u64,
    pub bytes: u64,
}

/// The managed store directory.
pub struct CacheStore {
    dir: PathBuf,
    policy: StorePolicy,
    evicted_size: AtomicU64,
    evicted_age: AtomicU64,
    tmp_reclaimed: u64,
}

impl CacheStore {
    /// Open (creating the directory), reclaim stale tmp scratch files,
    /// and run one initial eviction pass.
    pub fn open(dir: impl Into<PathBuf>, policy: StorePolicy) -> Self {
        let dir = dir.into();
        let _ = std::fs::create_dir_all(&dir);
        let tmp_age = policy
            .tmp_max_age_secs
            .map(Duration::from_secs)
            .unwrap_or(STALE_TMP_AGE);
        let tmp_reclaimed = sweep_stale_tmp(&dir, tmp_age) as u64;
        let store = Self {
            dir,
            policy,
            evicted_size: AtomicU64::new(0),
            evicted_age: AtomicU64::new(0),
            tmp_reclaimed,
        };
        store.evict();
        store
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Orphaned tmp files reclaimed at open.
    pub fn tmp_reclaimed(&self) -> u64 {
        self.tmp_reclaimed
    }

    /// Entries evicted so far, `(for size, for age)`.
    pub fn evictions(&self) -> (u64, u64) {
        (
            self.evicted_size.load(Ordering::Relaxed),
            self.evicted_age.load(Ordering::Relaxed),
        )
    }

    /// Scan current footprint (entries and bytes of `*.json` entries).
    pub fn usage(&self) -> StoreUsage {
        let mut usage = StoreUsage::default();
        for (_, _, len) in self.entries() {
            usage.entries += 1;
            usage.bytes += len;
        }
        usage
    }

    /// `(path, mtime, len)` of every cache entry.
    fn entries(&self) -> Vec<(PathBuf, SystemTime, u64)> {
        let Ok(rd) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        rd.flatten()
            .filter_map(|e| {
                let path = e.path();
                if path.extension().is_none_or(|x| x != "json") {
                    return None;
                }
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((path, mtime, meta.len()))
            })
            .collect()
    }

    /// Apply the policy: age pass first, then oldest-first size pass.
    /// Returns the post-eviction usage and mirrors it into metrics.
    pub fn evict(&self) -> StoreUsage {
        let now = SystemTime::now();
        let mut entries = self.entries();

        if let Some(max_age) = self.policy.max_age_secs.map(Duration::from_secs) {
            entries.retain(|(path, mtime, _)| {
                let expired = now.duration_since(*mtime).is_ok_and(|age| age >= max_age);
                if expired && std::fs::remove_file(path).is_ok() {
                    self.evicted_age.fetch_add(1, Ordering::Relaxed);
                    self.metric_eviction("age");
                    return false;
                }
                true
            });
        }

        if let Some(max_bytes) = self.policy.max_bytes {
            let mut total: u64 = entries.iter().map(|(_, _, len)| len).sum();
            // Oldest first; tie-break on the name so the order is stable
            // when a burst of writes lands within one mtime granule.
            entries.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
            let mut idx = 0;
            while total > max_bytes && idx < entries.len() {
                let (path, _, len) = &entries[idx];
                if std::fs::remove_file(path).is_ok() {
                    total -= len;
                    self.evicted_size.fetch_add(1, Ordering::Relaxed);
                    self.metric_eviction("size");
                }
                idx += 1;
            }
            entries.drain(..idx);
        }

        let usage = StoreUsage {
            entries: entries.len() as u64,
            bytes: entries.iter().map(|(_, _, len)| len).sum(),
        };
        if amem_metrics::enabled() {
            let reg = amem_metrics::global();
            reg.gauge("amem_store_entries", &[])
                .set(usage.entries as i64);
            reg.gauge("amem_store_bytes", &[]).set(usage.bytes as i64);
        }
        usage
    }

    fn metric_eviction(&self, reason: &'static str) {
        if amem_metrics::enabled() {
            amem_metrics::global()
                .counter("amem_store_evictions_total", &[("reason", reason)])
                .inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amem_serve_store_test_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn plant(dir: &Path, name: &str, bytes: usize) {
        std::fs::write(dir.join(name), vec![b'x'; bytes]).unwrap();
    }

    #[test]
    fn size_cap_evicts_oldest_first() {
        let dir = fresh("size");
        // Same mtime granule: the name tie-break makes order deterministic.
        plant(&dir, "a.json", 100);
        plant(&dir, "b.json", 100);
        plant(&dir, "c.json", 100);
        let store = CacheStore::open(
            dir.clone(),
            StorePolicy {
                max_bytes: Some(250),
                ..Default::default()
            },
        );
        let usage = store.usage();
        assert_eq!(usage.entries, 2, "one entry evicted to fit 250 bytes");
        assert_eq!(usage.bytes, 200);
        assert_eq!(store.evictions(), (1, 0));
        assert!(!dir.join("a.json").exists(), "oldest (tie-break: a) went");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn age_cap_expires_entries() {
        let dir = fresh("age");
        plant(&dir, "a.json", 10);
        let store = CacheStore::open(
            dir.clone(),
            StorePolicy {
                max_age_secs: Some(0),
                ..Default::default()
            },
        );
        // max_age 0: anything with a positive age is expired by the
        // open-time eviction pass.
        assert_eq!(store.usage().entries, 0);
        assert_eq!(store.evictions().1, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbounded_policy_keeps_everything() {
        let dir = fresh("unbounded");
        plant(&dir, "a.json", 10);
        plant(&dir, "b.json", 10);
        let store = CacheStore::open(dir.clone(), StorePolicy::default());
        assert_eq!(store.usage().entries, 2);
        assert_eq!(store.evictions(), (0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_reclaims_planted_tmp_orphans() {
        let dir = fresh("tmp");
        plant(&dir, "entry.json", 10);
        plant(&dir, "entry.tmp.999.3", 10);
        let store = CacheStore::open(
            dir.clone(),
            StorePolicy {
                tmp_max_age_secs: Some(0),
                ..Default::default()
            },
        );
        assert_eq!(store.tmp_reclaimed(), 1);
        assert!(!dir.join("entry.tmp.999.3").exists());
        assert!(dir.join("entry.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
