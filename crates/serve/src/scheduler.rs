//! The priority scheduler between frontends and the worker pool.
//!
//! Three FIFO lanes (high/normal/low). A worker popping work scans lanes
//! highest-first and takes the first job whose tenant passes the
//! token-bucket quota; throttled tenants' jobs are *skipped in place*
//! (never reordered), preserving FIFO within both priority and tenant.
//! When nothing is admissible the worker parks on a condvar with a short
//! timeout so bucket refills are re-checked promptly.
//!
//! Every lock is poison-tolerant (`unwrap_or_else(|p| p.into_inner())`,
//! the executor's discipline): one panicking job must never wedge the
//! queue for every other connection.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::{JobResult, JobSpec, Priority};
use crate::quota::{QuotaConfig, TenantQuotas};

/// One enqueued job, carrying everything a worker needs plus the cell
/// the submitting frontend is blocked on.
#[derive(Debug)]
pub struct QueuedJob {
    pub id: u64,
    pub tenant: String,
    pub priority: Priority,
    /// Boxed so the queue (and `push`'s closed-queue `Err`) stay small.
    pub spec: Box<JobSpec>,
    /// Per-job fault injection (test-only; see [`crate::protocol::Request`]).
    pub fault: Option<String>,
    pub enqueued: Instant,
    pub cell: Arc<ResultCell>,
}

/// A one-shot rendezvous between the frontend that submitted a job and
/// the worker that ran it. First write wins; later writes are ignored
/// (mirrors the executor's in-flight cells).
#[derive(Debug)]
pub struct ResultCell {
    done: Mutex<Option<Result<JobResult, String>>>,
    cv: Condvar,
}

impl ResultCell {
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            done: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    /// Publish the result (first writer wins) and wake the waiter.
    pub fn resolve(&self, result: Result<JobResult, String>) {
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        if done.is_none() {
            *done = Some(result);
        }
        self.cv.notify_all();
    }

    /// Block until the result is published.
    pub fn wait(&self) -> Result<JobResult, String> {
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = done.clone() {
                return result;
            }
            done = self
                .cv
                .wait(done)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Guard dropped by workers around job execution: if the job (or the
/// worker around it) unwinds without resolving, the waiter still gets a
/// typed error instead of hanging forever.
pub struct ResolveOnDrop {
    cell: Arc<ResultCell>,
}

impl ResolveOnDrop {
    pub fn new(cell: Arc<ResultCell>) -> Self {
        Self { cell }
    }
}

impl Drop for ResolveOnDrop {
    fn drop(&mut self) {
        // No-op if the worker already resolved (first write wins).
        self.cell
            .resolve(Err("job abandoned: worker unwound mid-run".into()));
    }
}

struct Lanes {
    lanes: [VecDeque<QueuedJob>; 3],
    closed: bool,
}

impl Lanes {
    fn depth(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// The shared queue: push from any frontend, pop from any worker.
pub struct JobQueue {
    state: Mutex<Lanes>,
    cv: Condvar,
    quotas: TenantQuotas,
    deferrals: AtomicU64,
}

impl JobQueue {
    pub fn new(quota: QuotaConfig) -> Self {
        Self {
            state: Mutex::new(Lanes {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                closed: false,
            }),
            cv: Condvar::new(),
            quotas: TenantQuotas::new(quota),
            deferrals: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Lanes> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueue; fails once the queue is closed (drain in progress).
    pub fn push(&self, job: QueuedJob) -> Result<(), QueuedJob> {
        let mut state = self.lock();
        if state.closed {
            return Err(job);
        }
        state.lanes[job.priority.lane()].push_back(job);
        let depth = state.depth();
        drop(state);
        if amem_metrics::enabled() {
            amem_metrics::global()
                .gauge("amem_serve_queue_depth", &[])
                .set(depth as i64);
        }
        self.cv.notify_one();
        Ok(())
    }

    /// Dequeue the next admissible job, blocking while the queue is open
    /// and empty (or every queued tenant is throttled). `None` means
    /// closed *and* fully drained — the worker should exit.
    pub fn pop(&self) -> Option<QueuedJob> {
        let mut state = self.lock();
        loop {
            let now = self.quotas.now_secs();
            for lane in 0..state.lanes.len() {
                for i in 0..state.lanes[lane].len() {
                    let tenant = state.lanes[lane][i].tenant.clone();
                    // Skip jobs whose tenant already had a job skipped
                    // this scan: taking a later job of the same tenant
                    // would reorder its FIFO.
                    if state.lanes[lane].iter().take(i).any(|j| j.tenant == tenant) {
                        continue;
                    }
                    if self.quotas.admit_at(&tenant, now) {
                        let job = state.lanes[lane].remove(i).expect("index in bounds");
                        let depth = state.depth();
                        drop(state);
                        if amem_metrics::enabled() {
                            amem_metrics::global()
                                .gauge("amem_serve_queue_depth", &[])
                                .set(depth as i64);
                        }
                        return Some(job);
                    }
                    // Counted at skip time: a scan that admits a later
                    // job returns early and would miss batched counting.
                    self.deferrals.fetch_add(1, Ordering::Relaxed);
                    if amem_metrics::enabled() {
                        amem_metrics::global()
                            .counter("amem_serve_quota_deferrals_total", &[])
                            .inc();
                    }
                }
            }
            if state.closed && state.depth() == 0 {
                return None;
            }
            // Park; the timeout bounds how stale a quota-refill check can
            // get when no push/close wakes us.
            let (guard, _timeout) = self
                .cv
                .wait_timeout(state, Duration::from_millis(10))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = guard;
        }
    }

    /// Stop accepting work; wakes every parked worker so the drain
    /// completes even on an empty queue.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    pub fn depth(&self) -> usize {
        self.lock().depth()
    }

    pub fn deferrals(&self) -> u64 {
        self.deferrals.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amem_core::curve::{CurveMode, CurveRequest};
    use amem_probes::dist::AccessDist;

    fn job(id: u64, tenant: &str, priority: Priority) -> QueuedJob {
        // The spec is irrelevant to scheduling; use the cheapest one.
        QueuedJob {
            id,
            tenant: tenant.into(),
            priority,
            spec: Box::new(JobSpec::Curve {
                request: CurveRequest {
                    dist: AccessDist::Uniform,
                    buffer_bytes: 1 << 16,
                    warm_accesses: 8,
                    measure_accesses: 8,
                    seed: id,
                    line_bytes: 64,
                    capacities_lines: vec![16],
                    mode: CurveMode::Exact,
                },
            }),
            fault: None,
            enqueued: Instant::now(),
            cell: ResultCell::new(),
        }
    }

    #[test]
    fn priority_lanes_run_highest_first_fifo_within() {
        let q = JobQueue::new(QuotaConfig::unlimited());
        q.push(job(1, "a", Priority::Low)).unwrap();
        q.push(job(2, "a", Priority::Normal)).unwrap();
        q.push(job(3, "a", Priority::High)).unwrap();
        q.push(job(4, "a", Priority::High)).unwrap();
        let order: Vec<u64> = (0..4).map(|_| q.pop().unwrap().id).collect();
        assert_eq!(order, vec![3, 4, 2, 1]);
    }

    #[test]
    fn throttled_tenant_defers_without_starving_others() {
        // Burst of 1, no refill to speak of: tenant a's second job must
        // wait while tenant b proceeds.
        let q = JobQueue::new(QuotaConfig {
            rate_per_sec: 1e-9,
            burst: 1.0,
        });
        q.push(job(1, "a", Priority::Normal)).unwrap();
        q.push(job(2, "a", Priority::Normal)).unwrap();
        q.push(job(3, "b", Priority::Normal)).unwrap();
        assert_eq!(q.pop().unwrap().id, 1, "a's first job spends its token");
        assert_eq!(q.pop().unwrap().id, 3, "b is not starved by a's backlog");
        assert!(q.deferrals() > 0, "the skip was counted");
        assert_eq!(q.depth(), 1, "a's second job is still queued");
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = Arc::new(JobQueue::new(QuotaConfig::unlimited()));
        q.push(job(1, "a", Priority::Normal)).unwrap();
        q.close();
        assert!(
            q.push(job(2, "a", Priority::Normal)).is_err(),
            "closed queue refuses new work"
        );
        assert_eq!(q.pop().unwrap().id, 1, "queued work still drains");
        assert!(q.pop().is_none(), "then workers are told to exit");
    }

    #[test]
    fn result_cells_resolve_first_writer_wins_and_survive_poison() {
        let cell = ResultCell::new();
        cell.resolve(Ok(JobResult::Pong));
        cell.resolve(Err("late loser".into()));
        assert!(matches!(cell.wait(), Ok(JobResult::Pong)));

        // A panicking waiter poisons the cell's mutex; resolve/wait from
        // other threads must shrug it off.
        let cell = ResultCell::new();
        let c2 = Arc::clone(&cell);
        let _ = std::thread::spawn(move || {
            let _guard = c2.done.lock().unwrap();
            panic!("poison the cell");
        })
        .join();
        cell.resolve(Ok(JobResult::Pong));
        assert!(matches!(cell.wait(), Ok(JobResult::Pong)));
    }

    #[test]
    fn abandoned_jobs_resolve_with_a_typed_error() {
        let cell = ResultCell::new();
        {
            let _guard = ResolveOnDrop::new(Arc::clone(&cell));
            // Simulated worker unwind: guard drops without a resolve.
        }
        let err = cell.wait().expect_err("abandoned");
        assert!(err.contains("abandoned"), "{err}");
    }
}
