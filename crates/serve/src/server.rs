//! The daemon: accept loop, stateless frontends, worker pool, drain.
//!
//! Architecture (DESIGN.md §15, after the worker/shard split in the
//! Golem lineage): connection handlers are *stateless frontends* — they
//! parse lines, journal a durable job record, enqueue, and block on the
//! job's result cell. All state lives behind them: the priority queue,
//! the shard-owned executors, and the shared store. Shutdown is a drain:
//! the queue closes (new submissions are refused with a typed error),
//! workers finish everything queued, and only then is the shutdown
//! acknowledged.
//!
//! Every mutex in the daemon follows the executor's poison-tolerance
//! discipline, and workers run jobs under `catch_unwind`, so one
//! panicking job (see `FaultSpec` `panic=`) costs exactly its own
//! submitter a typed error — never the queue.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use amem_core::capacity::CalibrateOpts;
use amem_core::sweep::run_sweep;
use amem_core::AmemError;

use crate::job::{JobRecord, JobStatus, JobStore, JOB_SCHEMA_VERSION};
use crate::protocol::{
    write_line, Command, JobResult, JobSpec, Request, Response, ServeStats, PROTOCOL_VERSION,
};
use crate::quota::QuotaConfig;
use crate::scheduler::{JobQueue, QueuedJob, ResolveOnDrop, ResultCell};
use crate::shard::ShardPool;
use crate::store::{CacheStore, StorePolicy};

/// Everything `Server::start` needs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see [`Server::addr`]).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Shards the request-key space is partitioned over.
    pub shards: usize,
    /// Shared measurement store; `None` = memory-only executors.
    pub cache_dir: Option<PathBuf>,
    /// Durable job-record directory; `None` = no journaling.
    pub state_dir: Option<PathBuf>,
    pub quota: QuotaConfig,
    pub store: StorePolicy,
    /// Turn the metrics registry on for this process.
    pub metrics: bool,
    /// Honor per-request `fault` specs (test/CI servers only).
    pub allow_fault: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            shards: 4,
            cache_dir: None,
            state_dir: None,
            quota: QuotaConfig::default(),
            store: StorePolicy::default(),
            metrics: false,
            allow_fault: false,
        }
    }
}

struct Inner {
    cfg: ServeConfig,
    queue: JobQueue,
    shards: ShardPool,
    store: Option<CacheStore>,
    jobs: JobStore,
    next_id: AtomicU64,
    requests: AtomicU64,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    shutting_down: AtomicBool,
    workers_alive: AtomicUsize,
    drained: Mutex<bool>,
    drained_cv: Condvar,
    started: Instant,
}

impl Inner {
    fn stats(&self) -> ServeStats {
        let (cache, executors) = self.shards.aggregate_stats();
        let usage = self.store.as_ref().map(|s| s.usage()).unwrap_or_default();
        let (evictions_size, evictions_age) =
            self.store.as_ref().map(|s| s.evictions()).unwrap_or((0, 0));
        let stats = ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            queue_depth: self.queue.depth() as u64,
            quota_deferrals: self.queue.deferrals(),
            shards: self.shards.shard_count(),
            executors,
            cache,
            store_entries: usage.entries,
            store_bytes: usage.bytes,
            evictions_size,
            evictions_age,
            tmp_reclaimed: self.store.as_ref().map(|s| s.tmp_reclaimed()).unwrap_or(0),
            uptime_secs: self.started.elapsed().as_secs_f64(),
        };
        if amem_metrics::enabled() {
            amem_metrics::global()
                .gauge("amem_serve_cache_hit_rate_percent", &[])
                .set(stats.hit_rate_percent() as i64);
        }
        stats
    }

    /// Execute one job spec against its shard-owned executor. The result
    /// payloads are the library's own structs, so what the frontend
    /// serializes is byte-identical to a local call.
    fn run_job(&self, spec: &JobSpec, fault: Option<&str>) -> Result<JobResult, AmemError> {
        let exec = self.shards.executor(spec, fault)?;
        match spec {
            JobSpec::Measure {
                workload,
                per_processor,
                mix,
                ..
            } => {
                let w = workload.build();
                let m = exec.run(w.as_ref(), *per_processor, *mix)?;
                Ok(JobResult::Measurement((*m).clone()))
            }
            JobSpec::Sweep {
                workload,
                per_processor,
                kind,
                max_count,
                ..
            } => {
                let w = workload.build();
                let sweep = run_sweep(&exec, w.as_ref(), *per_processor, *kind, *max_count)?;
                Ok(JobResult::Sweep(sweep))
            }
            JobSpec::Calibrate { max_cs, .. } => {
                let opts = CalibrateOpts {
                    max_cs: *max_cs,
                    ..CalibrateOpts::default()
                };
                let map = amem_core::CapacityMap::calibrate(&exec, &opts)?;
                Ok(JobResult::Capacity(map))
            }
            JobSpec::Curve { request } => {
                let curve = exec.run_curve(request)?;
                Ok(JobResult::Curve((*curve).clone()))
            }
        }
    }

    fn write_record(&self, job: &QueuedJob, status: JobStatus, error: Option<String>) {
        self.jobs.write(&JobRecord {
            schema_version: JOB_SCHEMA_VERSION,
            id: job.id,
            tenant: job.tenant.clone(),
            priority: job.priority,
            status,
            error,
            spec: (*job.spec).clone(),
        });
    }

    fn metric_job(&self, outcome: &'static str, kind: &'static str, wait: Duration) {
        if !amem_metrics::enabled() {
            return;
        }
        let reg = amem_metrics::global();
        reg.counter(
            "amem_serve_jobs_total",
            &[("outcome", outcome), ("kind", kind)],
        )
        .inc();
        reg.histogram("amem_serve_job_wait_ns", &[])
            .record(wait.as_nanos() as u64);
    }
}

fn worker_loop(inner: &Inner) {
    let mut since_evict = 0u64;
    while let Some(job) = inner.queue.pop() {
        let wait = job.enqueued.elapsed();
        let kind = job.spec.kind();
        inner.write_record(&job, JobStatus::Running, None);
        // If anything below unwinds past the catch (or the worker dies
        // between pop and resolve), the guard still unblocks the waiter.
        let guard = ResolveOnDrop::new(Arc::clone(&job.cell));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inner.run_job(&job.spec, job.fault.as_deref())
        }));
        let result: Result<JobResult, String> = match outcome {
            Ok(Ok(r)) => Ok(r),
            Ok(Err(e)) => Err(e.to_string()),
            Err(payload) => Err(format!("job panicked: {}", panic_message(&*payload))),
        };
        match &result {
            Ok(_) => {
                inner.jobs_completed.fetch_add(1, Ordering::Relaxed);
                inner.metric_job("completed", kind, wait);
                inner.write_record(&job, JobStatus::Done, None);
            }
            Err(e) => {
                inner.jobs_failed.fetch_add(1, Ordering::Relaxed);
                inner.metric_job("failed", kind, wait);
                inner.write_record(&job, JobStatus::Failed, Some(e.clone()));
            }
        }
        job.cell.resolve(result);
        drop(guard); // already resolved; the guard's write is a no-op

        // Periodic store maintenance, amortized across the pool.
        since_evict += 1;
        if since_evict >= 32 {
            since_evict = 0;
            if let Some(store) = &inner.store {
                store.evict();
            }
        }
        if amem_metrics::enabled() {
            let (cache, _) = inner.shards.aggregate_stats();
            amem_metrics::global()
                .gauge("amem_serve_cache_hit_rate_percent", &[])
                .set((100.0 * cache.hit_rate()) as i64);
        }
    }
    // Last worker out signals the drain.
    if inner.workers_alive.fetch_sub(1, Ordering::SeqCst) == 1 {
        let mut drained = inner.drained.lock().unwrap_or_else(|p| p.into_inner());
        *drained = true;
        inner.drained_cv.notify_all();
    }
}

/// One connection = one stateless frontend.
fn handle_conn(inner: &Arc<Inner>, stream: TcpStream) {
    let peer_write = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = peer_write;
    let mut reader = BufReader::new(stream);
    loop {
        let req: Request = match crate::protocol::read_line(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return, // clean EOF
            Err(e) => {
                let _ = write_line(&mut writer, &Response::err(0, format!("bad request: {e}")));
                continue;
            }
        };
        inner.requests.fetch_add(1, Ordering::Relaxed);
        if amem_metrics::enabled() {
            amem_metrics::global()
                .counter("amem_serve_requests_total", &[])
                .inc();
        }
        let resp = handle_request(inner, req);
        let shutdown_acked = matches!(resp.result, Some(JobResult::Drained { .. }));
        if write_line(&mut writer, &resp).is_err() {
            return;
        }
        if shutdown_acked {
            return;
        }
    }
}

fn handle_request(inner: &Arc<Inner>, req: Request) -> Response {
    if req.v != PROTOCOL_VERSION {
        return Response::err(
            0,
            format!(
                "protocol version mismatch: client v{}, server v{PROTOCOL_VERSION}",
                req.v
            ),
        );
    }
    match req.command {
        Command::Ping => Response::ok(0, JobResult::Pong),
        Command::Stats => Response::ok(0, JobResult::Stats(inner.stats())),
        Command::Metrics => {
            // Refresh the derived gauges before exporting.
            let _ = inner.stats();
            let text = amem_metrics::export::prometheus_text(&amem_metrics::snapshot());
            Response::ok(0, JobResult::Metrics { text })
        }
        Command::Shutdown => {
            inner.shutting_down.store(true, Ordering::SeqCst);
            inner.queue.close();
            let mut drained = inner.drained.lock().unwrap_or_else(|p| p.into_inner());
            while !*drained {
                drained = inner
                    .drained_cv
                    .wait(drained)
                    .unwrap_or_else(|p| p.into_inner());
            }
            if let Some(store) = &inner.store {
                store.evict();
            }
            Response::ok(
                0,
                JobResult::Drained {
                    jobs_completed: inner.jobs_completed.load(Ordering::Relaxed),
                },
            )
        }
        Command::Submit(spec) => {
            if req.fault.is_some() && !inner.cfg.allow_fault {
                return Response::err(0, "fault injection is not enabled on this server");
            }
            if req.tenant.is_empty() {
                return Response::err(0, "tenant must be non-empty");
            }
            let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
            let cell = ResultCell::new();
            let job = QueuedJob {
                id,
                tenant: req.tenant,
                priority: req.priority,
                spec,
                fault: req.fault,
                enqueued: Instant::now(),
                cell: Arc::clone(&cell),
            };
            inner.write_record(&job, JobStatus::Queued, None);
            match inner.queue.push(job) {
                Ok(()) => {
                    inner.jobs_submitted.fetch_add(1, Ordering::Relaxed);
                    match cell.wait() {
                        Ok(result) => Response::ok(id, result),
                        Err(e) => Response::err(id, e),
                    }
                }
                Err(job) => {
                    inner.write_record(&job, JobStatus::Failed, Some("server is draining".into()));
                    Response::err(id, "server is shutting down; job refused")
                }
            }
        }
    }
}

/// Best-effort human form of a panic payload (the executor's helper,
/// duplicated because it is three lines and not exported).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// A running daemon. Dropping the handle does *not* stop it; send a
/// `Shutdown` command (or exit the process).
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn workers and the accept loop, and return immediately.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        if cfg.metrics {
            amem_metrics::set_enabled(true);
        } else {
            amem_metrics::init_from_env();
        }
        let store = cfg
            .cache_dir
            .as_ref()
            .map(|dir| CacheStore::open(dir.clone(), cfg.store));
        let jobs = JobStore::open(cfg.state_dir.as_ref().map(|d| d.join("jobs")));
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let workers_n = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            queue: JobQueue::new(cfg.quota),
            shards: ShardPool::new(cfg.shards, cfg.cache_dir.clone()),
            store,
            jobs,
            next_id: AtomicU64::new(1),
            requests: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            workers_alive: AtomicUsize::new(workers_n),
            drained: Mutex::new(false),
            drained_cv: Condvar::new(),
            started: Instant::now(),
            cfg,
        });

        let workers = (0..workers_n)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("amem-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();

        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("amem-serve-accept".into())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let inner = Arc::clone(&accept_inner);
                        let _ = std::thread::Builder::new()
                            .name("amem-serve-conn".into())
                            .spawn(move || handle_conn(&inner, stream));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        // Poll the drain flag so the loop exits after a
                        // shutdown even with no further connections.
                        if accept_inner.shutting_down.load(Ordering::SeqCst)
                            && *accept_inner
                                .drained
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                        {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(_) => return,
                }
            })
            .expect("spawn accept loop");

        Ok(Server {
            inner,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Durable job records orphaned by a previous life and marked failed
    /// at startup.
    pub fn recovered_jobs(&self) -> usize {
        self.inner.jobs.recovered()
    }

    /// Service stats snapshot (same data the `Stats` command returns).
    pub fn stats(&self) -> ServeStats {
        self.inner.stats()
    }

    /// Block until a `Shutdown` command drains the daemon, then join
    /// every thread. Returns the final stats.
    pub fn wait(mut self) -> ServeStats {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.inner.stats()
    }
}
