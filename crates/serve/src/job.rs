//! Durable, schema-versioned job records.
//!
//! Every submitted job is journaled to `<state>/jobs/job-<id>.json`
//! before it runs and rewritten on completion, so an operator can always
//! answer "what was in flight when the daemon died?". On startup, records
//! stuck in `Queued`/`Running` are marked `Failed` (orphaned by restart) —
//! the manifest-as-durable-record idea from the run harness, applied to
//! the service. Writes go through the executor's tmp+rename helper, so
//! records are never torn.

use std::path::{Path, PathBuf};

use amem_core::unique_tmp_path;
use serde::{Deserialize, Serialize};

use crate::protocol::{JobSpec, Priority};

/// Bumped on any incompatible record change; mismatched records are
/// ignored on recovery rather than misread.
pub const JOB_SCHEMA_VERSION: u32 = 1;

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    Queued,
    Running,
    Done,
    Failed,
}

/// The durable form of one job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    pub schema_version: u32,
    pub id: u64,
    pub tenant: String,
    pub priority: Priority,
    pub status: JobStatus,
    /// Display form of the failure, when `status == Failed`.
    pub error: Option<String>,
    pub spec: JobSpec,
}

/// Writer/recoverer for the records directory. With no state dir the
/// store is a no-op (in-memory test servers don't journal).
pub struct JobStore {
    dir: Option<PathBuf>,
    recovered: usize,
}

impl JobStore {
    /// Open (creating the directory), then mark any `Queued`/`Running`
    /// records from a previous life as failed-by-restart.
    pub fn open(dir: Option<PathBuf>) -> Self {
        let mut store = Self { dir, recovered: 0 };
        if let Some(dir) = store.dir.clone() {
            let _ = std::fs::create_dir_all(&dir);
            store.recovered = store.recover(&dir);
        }
        store
    }

    /// Records orphaned by a crash/restart that were marked failed.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    fn recover(&self, dir: &Path) -> usize {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        let mut fixed = 0usize;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_none_or(|x| x != "json") {
                continue; // in-flight tmp scratch, or foreign debris
            }
            let Ok(json) = std::fs::read_to_string(&path) else {
                continue;
            };
            let Ok(mut rec) = serde_json::from_str::<JobRecord>(&json) else {
                continue;
            };
            if rec.schema_version != JOB_SCHEMA_VERSION {
                continue;
            }
            if matches!(rec.status, JobStatus::Queued | JobStatus::Running) {
                rec.status = JobStatus::Failed;
                rec.error = Some("orphaned by daemon restart".into());
                self.write_at(&path, &rec);
                fixed += 1;
            }
        }
        fixed
    }

    /// Journal one record (atomic tmp+rename; failures are swallowed —
    /// the journal is an audit trail, not a correctness layer).
    pub fn write(&self, rec: &JobRecord) {
        if let Some(dir) = &self.dir {
            self.write_at(&dir.join(format!("job-{}.json", rec.id)), rec);
        }
    }

    fn write_at(&self, path: &Path, rec: &JobRecord) {
        let Ok(json) = serde_json::to_string_pretty(rec) else {
            return;
        };
        let tmp = unique_tmp_path(path);
        if std::fs::write(&tmp, json).is_err() || std::fs::rename(&tmp, path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Read one record back (tests, operator tooling).
    pub fn load(&self, id: u64) -> Option<JobRecord> {
        let dir = self.dir.as_ref()?;
        let json = std::fs::read_to_string(dir.join(format!("job-{id}.json"))).ok()?;
        serde_json::from_str(&json).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WorkloadSpec;
    use amem_interfere::InterferenceMix;
    use amem_sim::config::MachineConfig;

    fn record(id: u64, status: JobStatus) -> JobRecord {
        let cfg = MachineConfig::xeon20mb().scaled(0.0625);
        JobRecord {
            schema_version: JOB_SCHEMA_VERSION,
            id,
            tenant: "t".into(),
            priority: Priority::Normal,
            status,
            error: None,
            spec: JobSpec::Measure {
                machine: cfg.clone(),
                workload: WorkloadSpec::Probe(amem_core::figures::fig1_probe(&cfg)),
                per_processor: 1,
                mix: InterferenceMix::none(),
            },
        }
    }

    #[test]
    fn records_round_trip_and_orphans_are_recovered() {
        let dir = std::env::temp_dir().join("amem_serve_jobstore_test");
        let _ = std::fs::remove_dir_all(&dir);

        let store = JobStore::open(Some(dir.clone()));
        assert_eq!(store.recovered(), 0, "fresh dir has no orphans");
        store.write(&record(1, JobStatus::Running));
        store.write(&record(2, JobStatus::Done));
        assert_eq!(store.load(1).unwrap().status, JobStatus::Running);

        // "Crash": reopen. The running record is failed-by-restart, the
        // finished one is untouched.
        let store = JobStore::open(Some(dir.clone()));
        assert_eq!(store.recovered(), 1);
        let orphan = store.load(1).unwrap();
        assert_eq!(orphan.status, JobStatus::Failed);
        assert!(orphan.error.unwrap().contains("restart"));
        assert_eq!(store.load(2).unwrap().status, JobStatus::Done);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_state_dir_is_a_silent_noop() {
        let store = JobStore::open(None);
        store.write(&record(1, JobStatus::Queued));
        assert!(store.load(1).is_none());
        assert_eq!(store.recovered(), 0);
    }
}
