//! STREAM-style triad: measures the machine's usable memory bandwidth.
//!
//! The paper quotes "17 GB/s of bandwidth between the L3 cache and memory
//! according to the STREAM benchmark" for Xeon20MB and uses that figure as
//! the denominator of every bandwidth-fraction statement. This module
//! reproduces the measurement: `a[i] = b[i] + s * c[i]` over arrays far
//! larger than the LLC, on all cores of one socket, counting every byte
//! that crosses the channel (reads, write-allocates and write-backs, as
//! STREAM's effective-bandwidth accounting does).

use amem_sim::config::{CoreId, MachineConfig};
use amem_sim::engine::{Job, RunLimit};
use amem_sim::machine::Machine;
use amem_sim::stream::{AccessStream, Op};
use serde::{Deserialize, Serialize};

/// STREAM configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StreamCfg {
    /// Worker cores (all on socket 0).
    pub cores: usize,
    /// Bytes per array per core. Default: each core's three arrays total
    /// 1.5× the LLC, the classic "4× cache rule" in aggregate.
    pub array_bytes: u64,
    /// Triad passes (the first warms, the rest measure).
    pub reps: u32,
}

impl StreamCfg {
    pub fn for_machine(cfg: &MachineConfig, cores: usize) -> Self {
        assert!(cores >= 1 && cores <= cfg.cores_per_socket as usize);
        Self {
            cores,
            array_bytes: (cfg.l3.size_bytes / 2 / cores as u64).max(4096),
            reps: 3,
        }
    }
}

struct TriadStream {
    a: u64,
    b: u64,
    c: u64,
    lines: u64,
    pos: u64,
    rep: u32,
    reps: u32,
    phase: u8,
    marked: bool,
}

impl AccessStream for TriadStream {
    fn next_op(&mut self) -> Op {
        if self.rep == self.reps {
            return Op::Done;
        }
        let off = self.pos * 64;
        let op = match self.phase {
            0 => Op::Load(self.b + off),
            1 => Op::Load(self.c + off),
            _ => Op::Store(self.a + off),
        };
        self.phase += 1;
        if self.phase == 3 {
            self.phase = 0;
            self.pos += 1;
            if self.pos == self.lines {
                self.pos = 0;
                self.rep += 1;
                if self.rep == 1 && !self.marked {
                    // Counters snapshot after the warm pass.
                    self.marked = true;
                    return Op::Mark;
                }
            }
        }
        op
    }

    fn mlp(&self) -> u8 {
        8
    }

    fn label(&self) -> &str {
        "stream-triad"
    }
}

/// Result of a STREAM run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StreamResult {
    /// Total channel traffic over the whole run, in GB/s — the machine's
    /// usable bandwidth (the paper's "17 GB/s").
    pub total_gbs: f64,
    /// Demand-read-only bandwidth (Eq. 1 view) aggregated over cores.
    pub read_gbs: f64,
    /// Wall seconds.
    pub seconds: f64,
}

/// Run the triad on `cores` cores of socket 0.
pub fn measure_stream(cfg: &MachineConfig, cores: usize) -> StreamResult {
    measure_stream_cfg(cfg, &StreamCfg::for_machine(cfg, cores))
}

/// Run the triad with explicit parameters.
pub fn measure_stream_cfg(cfg: &MachineConfig, scfg: &StreamCfg) -> StreamResult {
    let mut m = Machine::new(cfg.clone());
    let mut jobs = Vec::new();
    for i in 0..scfg.cores {
        let a = m.alloc(scfg.array_bytes);
        let b = m.alloc(scfg.array_bytes);
        let c = m.alloc(scfg.array_bytes);
        let s = TriadStream {
            a,
            b,
            c,
            lines: scfg.array_bytes / 64,
            pos: 0,
            rep: 0,
            reps: scfg.reps,
            phase: 0,
            marked: false,
        };
        jobs.push(Job::primary(Box::new(s), CoreId::new(0, i as u32)));
    }
    let r = m.run(jobs, RunLimit::default());
    let line = cfg.l3.line_bytes;
    let total_bytes = r.sockets[0].dram.total_bytes(line);
    let read_gbs = r
        .jobs
        .iter()
        .map(|j| j.counters.bandwidth_gbs(line, cfg.freq_ghz))
        .sum();
    StreamResult {
        total_gbs: cfg.gbs(total_bytes, r.wall_cycles),
        read_gbs,
        seconds: r.seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::xeon20mb().scaled(0.125)
    }

    #[test]
    fn full_socket_stream_saturates_near_channel_rate() {
        let c = cfg();
        let r = measure_stream(&c, 8);
        // The paper's machine: STREAM ≈ 17 of 18.2 raw. Accept 80–101%.
        assert!(
            r.total_gbs > 0.80 * c.raw_dram_gbs(),
            "STREAM {:.2} GB/s of raw {:.2}",
            r.total_gbs,
            c.raw_dram_gbs()
        );
        assert!(r.total_gbs <= 1.01 * c.raw_dram_gbs());
    }

    #[test]
    fn stream_scales_with_cores_then_plateaus() {
        // With an aggressive prefetcher a single streaming core already
        // pulls a large share of the channel (true of real Xeons as
        // well); more cores close the remaining gap and plateau.
        let c = cfg();
        let r1 = measure_stream(&c, 1).total_gbs;
        let r4 = measure_stream(&c, 4).total_gbs;
        let r8 = measure_stream(&c, 8).total_gbs;
        assert!(r4 > r1, "r1={r1:.2} r4={r4:.2}");
        assert!(r8 >= r4 * 0.9, "r4={r4:.2} r8={r8:.2}");
        assert!(r1 > 0.4 * r8, "single core should still stream well");
    }

    #[test]
    fn triad_moves_three_arrays() {
        let c = cfg();
        let scfg = StreamCfg {
            cores: 1,
            array_bytes: 1 << 20,
            reps: 2,
        };
        let r = measure_stream_cfg(&c, &scfg);
        assert!(r.seconds > 0.0);
        assert!(r.read_gbs > 0.0);
        // Reads alone can't exceed the total.
        assert!(r.read_gbs <= r.total_gbs * 1.05);
    }
}
