//! # amem-probes — synthetic benchmarks with analytically known hit rates
//!
//! Implements §III-C of *Casas & Bronevetsky, IPDPS 2014*:
//!
//! * [`dist`] — the probabilistic access distributions of Table II
//!   (Normal, Exponential, Triangular, Uniform at several spreads), with
//!   exact CDFs so the same object both drives the benchmark and feeds the
//!   analytic model.
//! * [`probe`] — the Fig. 4 benchmark skeleton: `N_ACCESS` random reads
//!   from a buffer, each followed by 1/10/100 integer additions.
//! * [`ehr`] — the paper's Eq. 4: `EHR = C · Σᵢ f(i)²` for a fully
//!   associative cache of capacity `C`, and its inverse, which converts a
//!   *measured* miss rate into an *effective cache capacity* — the tool
//!   that calibrates how much storage CSThr interference really steals.
//! * [`trace`] — machine-free line traces of the probe (exact replay and
//!   spatially-sampled direct generation) feeding the single-pass
//!   miss-ratio-curve engine in `amem_sim::stackdist`.
//! * [`stream`] — a STREAM-style triad used to measure the machine's peak
//!   memory bandwidth (the paper's quoted 17 GB/s for Xeon20MB).
//! * [`xray`] — automatic measurement of hierarchy parameters via
//!   dependent pointer chases (the paper's related work \[23\]\[24\]),
//!   doubling as a simulator self-check.

pub mod dist;
pub mod ehr;
pub mod probe;
pub mod stream;
pub mod trace;
pub mod xray;

pub use dist::{table2, AccessDist, NamedDist};
pub use ehr::{effective_cache_bytes, expected_hit_rate, expected_miss_rate, sum_sq_line_mass};
pub use probe::{ProbeCfg, ProbeStream};
pub use stream::{measure_stream, StreamCfg};
pub use trace::{line_trace, sampled_line_trace};
