//! X-ray-style automatic measurement of memory-hierarchy parameters.
//!
//! The paper's related work (§V, refs \[23\]\[24\]: Yotov et al., "X-Ray")
//! determines cache sizes and latencies with micro-benchmarks. This module
//! brings the same instrument to any [`MachineConfig`]: a dependent
//! pointer chase (one load in flight, each address computed from the
//! previous value's location) over a working set swept from a few KiB to
//! several times the LLC. Each plateau in the latency curve is a level of
//! the hierarchy; each jump is a boundary.
//!
//! Besides reproducing the related-work instrument, this doubles as a
//! self-check for the simulator: the discovered sizes/latencies must
//! match the configuration that produced them (see the tests).

use amem_sim::config::{CoreId, MachineConfig};
use amem_sim::engine::{Job, RunLimit};
use amem_sim::machine::Machine;
use amem_sim::rng::Xoshiro256;
use amem_sim::stream::{AccessStream, Op};
use serde::Serialize;

/// One point of the latency curve.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LatencyPoint {
    pub working_set_bytes: u64,
    /// Average load-to-use latency in cycles.
    pub cycles_per_load: f64,
}

/// A detected hierarchy level.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LevelEstimate {
    /// Largest working set still served at this latency.
    pub capacity_bytes: u64,
    /// The plateau latency in cycles.
    pub latency_cycles: f64,
}

/// Dependent pointer chase: a random cyclic permutation of `lines`,
/// walked one load at a time (MLP = 1 by construction).
struct Chase {
    base: u64,
    /// next[i] = line visited after line i (a single cycle covering all).
    next: Vec<u32>,
    pos: u32,
    remaining: u64,
    warm: u64,
    marked: bool,
}

impl Chase {
    fn new(machine: &mut Machine, bytes: u64, accesses: u64, seed: u64) -> Self {
        let lines = (bytes / 64).max(2) as u32;
        let base = machine.alloc(bytes.max(128));
        // Sattolo's algorithm: a uniform random single-cycle permutation,
        // so the chase visits every line exactly once per lap (defeating
        // both the prefetcher and short cycles).
        let mut next: Vec<u32> = (0..lines).collect();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for i in (1..lines as u64).rev() {
            let j = rng.below(i) as usize;
            next.swap(i as usize, j);
        }
        Self {
            base,
            next,
            pos: 0,
            remaining: accesses,
            warm: lines as u64 * 2,
            marked: false,
        }
    }
}

impl AccessStream for Chase {
    fn next_op(&mut self) -> Op {
        if self.warm > 0 {
            self.warm -= 1;
        } else if !self.marked {
            self.marked = true;
            return Op::Mark;
        } else if self.remaining == 0 {
            return Op::Done;
        } else {
            self.remaining -= 1;
        }
        self.pos = self.next[self.pos as usize];
        // The dependency: the next op cannot issue before this one is
        // consumed. Compute(0) drains the in-flight load, serializing the
        // chain exactly like a real pointer chase.
        Op::Load(self.base + self.pos as u64 * 64)
    }

    fn mlp(&self) -> u8 {
        1
    }

    fn label(&self) -> &str {
        "pointer-chase"
    }
}

/// Wrapper interleaving a drain after each load (pointer dependency).
struct SerializedChase(Chase, bool);

impl AccessStream for SerializedChase {
    fn next_op(&mut self) -> Op {
        if self.1 {
            self.1 = false;
            return Op::Compute(0);
        }
        let op = self.0.next_op();
        if matches!(op, Op::Load(_)) {
            self.1 = true;
        }
        op
    }
    fn mlp(&self) -> u8 {
        1
    }
    fn label(&self) -> &str {
        "pointer-chase"
    }
}

/// Measure average load-to-use latency for one working-set size.
pub fn chase_latency(cfg: &MachineConfig, bytes: u64, accesses: u64) -> LatencyPoint {
    let mut m = Machine::new(cfg.clone());
    let chase = SerializedChase(Chase::new(&mut m, bytes, accesses, 0xC4A5E), false);
    let r = m.run(
        vec![Job::primary(Box::new(chase), CoreId::new(0, 0))],
        RunLimit::default(),
    );
    let c = r.jobs[0].after_last_mark();
    LatencyPoint {
        working_set_bytes: bytes,
        cycles_per_load: c.cycles as f64 / c.loads.max(1) as f64,
    }
}

/// Sweep working-set sizes (quarter-octave steps) from `lo` to `hi` bytes.
pub fn latency_curve(cfg: &MachineConfig, lo: u64, hi: u64, accesses: u64) -> Vec<LatencyPoint> {
    let mut out = Vec::new();
    let mut s = lo.max(128) as f64;
    while (s as u64) <= hi {
        out.push(chase_latency(cfg, s as u64, accesses));
        s *= 1.4;
    }
    out
}

/// Segment the curve into plateaus: a new level starts when latency jumps
/// by more than `jump_factor` over the current plateau's average.
pub fn detect_levels(curve: &[LatencyPoint], jump_factor: f64) -> Vec<LevelEstimate> {
    let mut levels = Vec::new();
    if curve.is_empty() {
        return levels;
    }
    let mut plateau_sum = curve[0].cycles_per_load;
    let mut plateau_n = 1.0;
    let mut plateau_end = curve[0].working_set_bytes;
    for p in &curve[1..] {
        let avg = plateau_sum / plateau_n;
        if p.cycles_per_load > avg * jump_factor {
            levels.push(LevelEstimate {
                capacity_bytes: plateau_end,
                latency_cycles: avg,
            });
            plateau_sum = p.cycles_per_load;
            plateau_n = 1.0;
        } else {
            plateau_sum += p.cycles_per_load;
            plateau_n += 1.0;
        }
        plateau_end = p.working_set_bytes;
    }
    levels.push(LevelEstimate {
        capacity_bytes: plateau_end,
        latency_cycles: plateau_sum / plateau_n,
    });
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::xeon20mb().scaled(0.0625)
    }

    #[test]
    fn latency_rises_with_working_set() {
        let c = cfg();
        let small = chase_latency(&c, c.l1.size_bytes / 2, 20_000);
        let mid = chase_latency(&c, c.l2.size_bytes * 2, 20_000);
        let large = chase_latency(&c, c.l3.size_bytes * 3, 20_000);
        assert!(small.cycles_per_load < mid.cycles_per_load);
        assert!(mid.cycles_per_load < large.cycles_per_load);
    }

    #[test]
    fn l1_latency_recovered() {
        let c = cfg();
        let p = chase_latency(&c, c.l1.size_bytes / 2, 20_000);
        // Chase cost = issue (1) + L1 latency.
        let expected = 1.0 + c.l1.latency as f64;
        assert!(
            (p.cycles_per_load - expected).abs() < 1.5,
            "measured {:.1}, expected ~{expected}",
            p.cycles_per_load
        );
    }

    #[test]
    fn dram_latency_recovered() {
        let c = cfg();
        let p = chase_latency(&c, c.l3.size_bytes * 4, 20_000);
        let expected = (c.l3.latency + c.dram_latency) as f64;
        assert!(
            p.cycles_per_load > 0.9 * expected,
            "measured {:.1}, expected >= ~{expected}",
            p.cycles_per_load
        );
    }

    #[test]
    fn detect_levels_finds_the_hierarchy() {
        let c = cfg();
        let curve = latency_curve(&c, 1 << 10, 3 * c.l3.size_bytes, 12_000);
        let levels = detect_levels(&curve, 1.6);
        // L1, L2, L3, DRAM — allow merging of adjacent plateaus but the
        // chase must see at least three distinct levels.
        assert!(
            (3..=5).contains(&levels.len()),
            "found {} levels: {levels:?}",
            levels.len()
        );
        // Latencies strictly increase across detected levels.
        for w in levels.windows(2) {
            assert!(w[1].latency_cycles > w[0].latency_cycles);
        }
        // The first boundary approximates the L1 capacity (within the
        // sweep's quarter-octave resolution).
        let l1 = levels[0].capacity_bytes as f64;
        let real = c.l1.size_bytes as f64;
        assert!(
            l1 > 0.4 * real && l1 < 2.5 * real,
            "L1 estimate {l1} vs real {real}"
        );
    }

    #[test]
    fn detect_levels_handles_flat_and_empty() {
        assert!(detect_levels(&[], 1.5).is_empty());
        let flat: Vec<LatencyPoint> = (1..5)
            .map(|i| LatencyPoint {
                working_set_bytes: i * 1024,
                cycles_per_load: 5.0,
            })
            .collect();
        let levels = detect_levels(&flat, 1.5);
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].capacity_bytes, 4096);
    }
}
