//! Machine-free line traces of the Fig. 4 probe.
//!
//! The single-pass curve engine needs the probe's *cache-line reference
//! sequence*, not its timing: which line each load touches, in order,
//! with the warm-up/measure boundary. Two generators supply it:
//!
//! * [`line_trace`] replays the exact `ProbeStream` RNG sequence at line
//!   granularity — same seed, same `sample_index` calls, so the line
//!   sequence is bit-identical to what a simulated run would issue
//!   (`Compute` ops never touch memory and the probe buffer is
//!   page-aligned, so relative line ids carry all the information).
//! * [`sampled_line_trace`] is the ~10×-cheaper Examem-style mode. It
//!   exploits that probe accesses are i.i.d.: the subsequence restricted
//!   to a hash-sampled subset of lines is itself i.i.d. from the
//!   conditional distribution over those lines. So instead of generating
//!   the full stream and filtering (which would leave generation cost
//!   dominating), it draws the short sub-stream *directly* from the
//!   conditional CDF — cost scales with the sampling rate end to end.

use amem_sim::rng::Xoshiro256;
use amem_sim::stackdist::{line_sampled, LineTrace};

use crate::ehr;
use crate::probe::ProbeCfg;

/// The probe's relative-line access trace: `warm + measure` draws from
/// `cfg.dist`, mapped to line ids, mark at the warm/measure boundary.
///
/// Uses the same seed and the same `sample_index` call sequence as
/// [`crate::probe::ProbeStream`], so line ids here equal the stream's
/// `(addr - base) >> log2(line_bytes)` exactly.
pub fn line_trace(cfg: &ProbeCfg, line_bytes: u64) -> LineTrace {
    assert!(line_bytes.is_power_of_two() && line_bytes >= 4);
    let elems = cfg.buffer_bytes / 4;
    assert!(elems > 0, "buffer must hold at least one element");
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let total = cfg.warm_accesses + cfg.measure_accesses;
    let shift = (line_bytes / 4).trailing_zeros(); // elems per line, log2
    let mut lines = Vec::with_capacity(total as usize);
    for _ in 0..total {
        let idx = cfg.dist.sample_index(&mut rng, elems);
        lines.push(idx >> shift);
    }
    LineTrace {
        lines,
        mark: cfg.warm_accesses as usize,
    }
}

/// Direct generation of the spatially-sampled sub-trace at `rate`.
///
/// Lines are selected by the same stateless hash as
/// [`amem_sim::stackdist::line_sampled`]; the sub-stream length is the
/// expected number of accesses landing on sampled lines, and each draw
/// inverts the conditional CDF over the sampled lines (binary search).
/// Returns the sub-trace plus the *actual* fraction of distinct lines
/// sampled (the distance scaling factor), or `None` when fewer than two
/// lines survive — callers should fall back to exact mode then.
pub fn sampled_line_trace(cfg: &ProbeCfg, line_bytes: u64, rate: f64) -> Option<(LineTrace, f64)> {
    assert!(rate > 0.0 && rate <= 1.0, "sample rate must be in (0, 1]");
    let masses = ehr::line_masses(&cfg.dist, cfg.buffer_bytes, 4, line_bytes);
    let n_lines = masses.len() as u64;
    // Cumulative mass over the sampled lines only.
    let mut sampled: Vec<u64> = Vec::new();
    let mut cum: Vec<f64> = Vec::new();
    let mut p_s = 0.0f64;
    for (l, &m) in masses.iter().enumerate() {
        if line_sampled(l as u64, rate) {
            p_s += m;
            sampled.push(l as u64);
            cum.push(p_s);
        }
    }
    if sampled.len() < 2 || p_s <= 0.0 {
        return None;
    }
    let actual_rate = sampled.len() as f64 / n_lines as f64;
    // An access lands on a sampled line with probability p_s; the
    // sub-stream keeps the expected count from each phase.
    let warm = (cfg.warm_accesses as f64 * p_s).round() as u64;
    let measure = ((cfg.measure_accesses as f64 * p_s).round() as u64).max(1);
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let mut lines = Vec::with_capacity((warm + measure) as usize);
    for _ in 0..warm + measure {
        let u = rng.next_f64() * p_s;
        let i = cum.partition_point(|&c| c <= u).min(sampled.len() - 1);
        lines.push(sampled[i]);
    }
    Some((
        LineTrace {
            lines,
            mark: warm as usize,
        },
        actual_rate,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::AccessDist;
    use amem_sim::machine::Machine;
    use amem_sim::stackdist::StackDistHistogram;
    use amem_sim::stream::{AccessStream, Op};
    use amem_sim::MachineConfig;

    fn probe(dist: AccessDist, buffer_bytes: u64, warm: u64, measure: u64) -> ProbeCfg {
        ProbeCfg {
            dist,
            buffer_bytes,
            adds_per_load: 1,
            warm_accesses: warm,
            measure_accesses: measure,
            mlp: 2,
            seed: 0x009B_0BE5,
        }
    }

    #[test]
    fn line_trace_matches_probe_stream_addresses() {
        // Drain a real ProbeStream and check the relative line sequence
        // is identical — the guarantee the curve engine rests on.
        let cfg = probe(AccessDist::Exponential { rate: 6.0 }, 1 << 16, 500, 700);
        let mut m = Machine::new(MachineConfig::xeon20mb().scaled(0.125));
        let mut s = crate::probe::ProbeStream::new(&mut m, &cfg);
        let line_bytes = 64u64;
        let mut stream_lines = Vec::new();
        let mut mark_at = 0usize;
        loop {
            match s.next_op() {
                Op::Load(a) => stream_lines.push(a >> line_bytes.trailing_zeros()),
                Op::Mark => mark_at = stream_lines.len(),
                Op::Done => break,
                _ => {}
            }
        }
        // The stream's addresses are base-offset; normalize to relative
        // lines (base is page-aligned, so the offset is a whole number
        // of lines).
        let base = 0x1000_0000u64 >> 6;
        let rel: Vec<u64> = stream_lines.iter().map(|&l| l - base).collect();
        let t = line_trace(&cfg, line_bytes);
        assert_eq!(t.lines, rel);
        assert_eq!(t.mark, mark_at);
        assert_eq!(t.mark, 500);
    }

    #[test]
    fn sampled_trace_curve_tracks_exact_curve() {
        let cfg = probe(
            AccessDist::Normal {
                mu: 0.5,
                sigma: 0.25,
            },
            4 << 20,
            40_000,
            40_000,
        );
        let exact = StackDistHistogram::compute(&line_trace(&cfg, 64), 1.0);
        let (st, r) = sampled_line_trace(&cfg, 64, 0.05).expect("enough lines at 5%");
        assert!(r > 0.02 && r < 0.1, "actual rate {r}");
        let approx = StackDistHistogram::compute(&st, r);
        let total_lines = (4u64 << 20) / 64;
        for frac in [0.1, 0.3, 0.5, 0.8, 1.2] {
            let c = (total_lines as f64 * frac) as u64;
            let (e, a) = (exact.miss_rate_at_lines(c), approx.miss_rate_at_lines(c));
            assert!(
                (e - a).abs() < 0.06,
                "cap {c}: exact {e:.4} vs sampled {a:.4}"
            );
        }
    }

    #[test]
    fn sampled_trace_is_much_shorter() {
        let cfg = probe(AccessDist::Uniform, 4 << 20, 50_000, 50_000);
        let (st, _) = sampled_line_trace(&cfg, 64, 0.01).unwrap();
        let full = (cfg.warm_accesses + cfg.measure_accesses) as usize;
        assert!(
            st.lines.len() < full / 20,
            "{} of {} accesses",
            st.lines.len(),
            full
        );
    }

    #[test]
    fn sampled_trace_falls_back_on_tiny_buffers() {
        // A one-line buffer cannot be spatially sampled.
        let cfg = probe(AccessDist::Uniform, 64, 10, 10);
        assert!(sampled_line_trace(&cfg, 64, 0.01).is_none());
    }

    #[test]
    fn rate_one_samples_every_line() {
        let cfg = probe(AccessDist::Triangular { mode: 0.6 }, 1 << 16, 100, 100);
        let (st, r) = sampled_line_trace(&cfg, 64, 1.0).unwrap();
        assert_eq!(r, 1.0);
        assert_eq!(st.lines.len(), 200);
        // All lines in range.
        let n_lines = (1u64 << 16) / 64;
        assert!(st.lines.iter().all(|&l| l < n_lines));
    }
}
