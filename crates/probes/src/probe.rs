//! The Fig. 4 probe benchmark.
//!
//! ```c
//! int* buf = malloc(sizeof(int) * bufSize);
//! for (int i = 0; i < N_ACCESSES; i++) {
//!     int value = buf[X()];
//!     // some computation involving value
//! }
//! ```
//!
//! `X()` samples a Table II distribution; the computation is 1, 10 or 100
//! integer additions (the paper's three "memory access frequency"
//! levels). The stream runs a warm-up phase (to reach the steady state the
//! analytic model assumes), emits an [`Op::Mark`] to snapshot counters,
//! then the measurement phase. The measured L3 miss rate after the mark
//! feeds Eq. 4's inversion.

use amem_sim::config::{CoreId, MachineConfig};
use amem_sim::engine::{Job, RunLimit};
use amem_sim::machine::Machine;
use amem_sim::rng::Xoshiro256;
use amem_sim::stream::{AccessStream, Op};
use serde::{Deserialize, Serialize};

use crate::dist::AccessDist;

/// Integer ALU throughput assumed when converting "integer additions"
/// into cycles (3-wide issue, as on the paper's Sandy Bridge cores).
pub const ADDS_PER_CYCLE: u32 = 3;

/// Configuration of one probe run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProbeCfg {
    pub dist: AccessDist,
    /// Buffer size in bytes (paper sweeps 30–74 MB against a 20 MB L3,
    /// i.e. 1.5×–3.7× the LLC).
    pub buffer_bytes: u64,
    /// Integer additions between consecutive loads (1, 10 or 100).
    pub adds_per_load: u32,
    /// Warm-up accesses before the counter mark.
    pub warm_accesses: u64,
    /// Measured accesses after the mark.
    pub measure_accesses: u64,
    /// Out-of-order overlap for the independent random loads.
    pub mlp: u8,
    pub seed: u64,
}

impl ProbeCfg {
    /// A probe sized relative to a machine: `buffer_ratio` × L3 capacity,
    /// with warm-up and measurement phases long enough for steady state
    /// (several multiples of the LLC line count).
    pub fn for_machine(
        cfg: &MachineConfig,
        dist: AccessDist,
        buffer_ratio: f64,
        adds_per_load: u32,
    ) -> Self {
        assert!(buffer_ratio > 0.0);
        let l3_lines = cfg.l3.lines();
        Self {
            dist,
            buffer_bytes: (cfg.l3.size_bytes as f64 * buffer_ratio) as u64,
            adds_per_load,
            warm_accesses: 3 * l3_lines,
            measure_accesses: 3 * l3_lines,
            mlp: 2,
            seed: 0x009B_0BE5,
        }
    }

    /// Compute cycles per load implied by `adds_per_load`.
    pub fn compute_cycles(&self) -> u32 {
        (self.adds_per_load / ADDS_PER_CYCLE).max(1)
    }

    /// `Σ g(ℓ)²` of this probe's distribution over its buffer at the
    /// given line size (the distribution-dependent constant of Eq. 4).
    pub fn sum_sq_line_mass(&self, line_bytes: u64) -> f64 {
        crate::ehr::sum_sq_line_mass(&self.dist, self.buffer_bytes, 4, line_bytes)
    }

    /// Closed-form Eq. 4 expectation for this probe on a fully
    /// associative cache of `cache_lines` lines — the analytic twin of
    /// the measured post-`Mark` hit rate, evaluated with no simulation.
    /// The conformance oracles assert the simulator converges to this.
    pub fn expected_hit_rate(&self, cache_lines: u64, line_bytes: u64) -> f64 {
        crate::ehr::expected_hit_rate(cache_lines, self.sum_sq_line_mass(line_bytes))
    }
}

/// The probe as a simulator stream: warm-up → `Mark` → measure → `Done`.
pub struct ProbeStream {
    base: u64,
    elems: u64,
    dist: AccessDist,
    rng: Xoshiro256,
    compute: u32,
    remaining_warm: u64,
    remaining_measure: u64,
    marked: bool,
    pending_compute: bool,
    mlp: u8,
}

impl ProbeStream {
    pub fn new(machine: &mut Machine, cfg: &ProbeCfg) -> Self {
        assert!(cfg.buffer_bytes >= 64);
        let base = machine.alloc(cfg.buffer_bytes);
        Self {
            base,
            elems: cfg.buffer_bytes / 4,
            dist: cfg.dist,
            rng: Xoshiro256::seed_from_u64(cfg.seed),
            compute: cfg.compute_cycles(),
            remaining_warm: cfg.warm_accesses,
            remaining_measure: cfg.measure_accesses,
            marked: false,
            pending_compute: false,
            mlp: cfg.mlp,
        }
    }

    #[inline]
    fn sample_load(&mut self) -> Op {
        let idx = self.dist.sample_index(&mut self.rng, self.elems);
        Op::Load(self.base + idx * 4)
    }
}

impl AccessStream for ProbeStream {
    fn next_op(&mut self) -> Op {
        if self.pending_compute {
            self.pending_compute = false;
            return Op::Compute(self.compute);
        }
        if self.remaining_warm > 0 {
            self.remaining_warm -= 1;
        } else if !self.marked {
            self.marked = true;
            return Op::Mark;
        } else if self.remaining_measure > 0 {
            self.remaining_measure -= 1;
        } else {
            return Op::Done;
        }
        self.pending_compute = true;
        self.sample_load()
    }

    /// Batch generation emitting load/compute pairs in tight per-phase
    /// loops; the op sequence is identical to repeated [`Self::next_op`]
    /// (guarded by `next_batch_matches_next_op`).
    fn next_batch(&mut self, out: &mut Vec<Op>, max: usize) {
        let mut n = 0;
        while n < max {
            if self.pending_compute {
                self.pending_compute = false;
                out.push(Op::Compute(self.compute));
                n += 1;
                continue;
            }
            let phase = if self.remaining_warm > 0 {
                &mut self.remaining_warm
            } else if !self.marked {
                self.marked = true;
                out.push(Op::Mark);
                n += 1;
                continue;
            } else if self.remaining_measure > 0 {
                &mut self.remaining_measure
            } else {
                out.push(Op::Done);
                return;
            };
            let pairs = ((max - n) / 2).min(*phase as usize);
            *phase -= pairs as u64;
            let odd_load = n + 2 * pairs < max && *phase > 0;
            if odd_load {
                *phase -= 1;
            }
            for _ in 0..pairs {
                let load = self.sample_load();
                out.push(load);
                out.push(Op::Compute(self.compute));
            }
            n += 2 * pairs;
            if odd_load {
                // The pair straddles the batch boundary: emit the load now,
                // owe the compute to the next batch.
                let load = self.sample_load();
                out.push(load);
                self.pending_compute = true;
                n += 1;
            }
        }
    }

    fn mlp(&self) -> u8 {
        self.mlp
    }

    fn label(&self) -> &str {
        "probe"
    }
}

/// Result of one probe run.
#[derive(Debug, Clone, Serialize)]
pub struct ProbeResult {
    /// L3 miss rate over the measurement phase.
    pub l3_miss_rate: f64,
    /// Measurement-phase wall time in seconds.
    pub seconds: f64,
    /// Measurement-phase Eq. 1 bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Full measurement-phase counters.
    pub counters: amem_sim::CoreCounters,
}

/// Run a probe on core (0,0) of a fresh machine, with the given extra
/// background jobs (interference threads) built by `extra`.
///
/// `extra` receives the machine so interference buffers allocate from the
/// same address space.
pub fn run_probe(
    cfg: &MachineConfig,
    probe: &ProbeCfg,
    extra: impl FnOnce(&mut Machine) -> Vec<Job>,
) -> ProbeResult {
    let mut m = Machine::new(cfg.clone());
    let stream = ProbeStream::new(&mut m, probe);
    let mut jobs = vec![Job::primary(Box::new(stream), CoreId::new(0, 0))];
    jobs.extend(extra(&mut m));
    let r = m.run(jobs, RunLimit::default());
    let c = r.jobs[0].after_last_mark();
    ProbeResult {
        l3_miss_rate: c.l3_miss_rate(),
        seconds: cfg.seconds(c.cycles),
        bandwidth_gbs: c.bandwidth_gbs(cfg.l3.line_bytes, cfg.freq_ghz),
        counters: c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{table2, AccessDist};
    use crate::ehr;

    fn cfg() -> MachineConfig {
        MachineConfig::xeon20mb().scaled(0.125)
    }

    #[test]
    fn stream_shape_load_compute_mark_done() {
        let mut m = Machine::new(cfg());
        let p = ProbeCfg {
            dist: AccessDist::Uniform,
            buffer_bytes: 4096,
            adds_per_load: 10,
            warm_accesses: 2,
            measure_accesses: 3,
            mlp: 1,
            seed: 1,
        };
        let mut s = ProbeStream::new(&mut m, &p);
        let mut ops = Vec::new();
        loop {
            let op = s.next_op();
            ops.push(op);
            if op == Op::Done {
                break;
            }
        }
        let loads = ops.iter().filter(|o| matches!(o, Op::Load(_))).count();
        let marks = ops.iter().filter(|o| matches!(o, Op::Mark)).count();
        let computes = ops.iter().filter(|o| matches!(o, Op::Compute(_))).count();
        assert_eq!(loads, 5);
        assert_eq!(marks, 1);
        assert_eq!(computes, 5);
        // Mark comes after the warm loads and their computes.
        let mark_pos = ops.iter().position(|o| matches!(o, Op::Mark)).unwrap();
        assert_eq!(mark_pos, 4);
    }

    #[test]
    fn next_batch_matches_next_op() {
        let p = ProbeCfg {
            dist: AccessDist::Exponential { rate: 4.0 },
            buffer_bytes: 8192,
            adds_per_load: 10,
            warm_accesses: 11,
            measure_accesses: 7,
            mlp: 2,
            seed: 42,
        };
        let mut serial_src = ProbeStream::new(&mut Machine::new(cfg()), &p);
        let mut serial = Vec::new();
        loop {
            let op = serial_src.next_op();
            serial.push(op);
            if op == Op::Done {
                break;
            }
        }
        // Odd batch sizes force the load/compute pair to straddle batch
        // boundaries; 1 degenerates to one op per call.
        for batch_size in [1, 3, 7, 256] {
            let mut s = ProbeStream::new(&mut Machine::new(cfg()), &p);
            let mut ops = Vec::new();
            while ops.last() != Some(&Op::Done) {
                let before = ops.len();
                s.next_batch(&mut ops, batch_size);
                assert!(ops.len() - before <= batch_size);
            }
            assert_eq!(ops, serial, "batch_size={batch_size}");
        }
    }

    #[test]
    fn uniform_probe_measured_miss_rate_matches_eq4() {
        // Uniform is the distribution where Eq. 4 is exact (no per-line
        // saturation, no associativity hot spots): the measured rate must
        // land near the prediction.
        let c = cfg();
        let ratio = 2.5;
        let p = ProbeCfg::for_machine(&c, AccessDist::Uniform, ratio, 1);
        let r = run_probe(&c, &p, |_| Vec::new());
        let ssq = ehr::sum_sq_line_mass(&AccessDist::Uniform, p.buffer_bytes, 4, 64);
        let predicted = ehr::expected_miss_rate(c.l3.lines(), ssq);
        assert!(
            (r.l3_miss_rate - predicted).abs() < 0.1,
            "measured {:.3} vs predicted {:.3}",
            r.l3_miss_rate,
            predicted
        );
    }

    #[test]
    fn bigger_buffers_miss_more() {
        let c = cfg();
        let d = AccessDist::Exponential { rate: 6.0 };
        let mr = |ratio: f64| {
            run_probe(&c, &ProbeCfg::for_machine(&c, d, ratio, 1), |_| Vec::new()).l3_miss_rate
        };
        let small = mr(1.6);
        let large = mr(3.6);
        assert!(large > small + 0.05, "small={small:.3} large={large:.3}");
    }

    #[test]
    fn compute_intensity_slows_but_preserves_miss_rate() {
        let c = cfg();
        let d = AccessDist::Triangular { mode: 0.6 };
        let p1 = ProbeCfg::for_machine(&c, d, 2.0, 1);
        let p100 = ProbeCfg::for_machine(&c, d, 2.0, 100);
        let r1 = run_probe(&c, &p1, |_| Vec::new());
        let r100 = run_probe(&c, &p100, |_| Vec::new());
        assert!(r100.seconds > r1.seconds * 1.1);
        assert!((r100.l3_miss_rate - r1.l3_miss_rate).abs() < 0.05);
    }

    #[test]
    fn all_table2_probes_run_and_span_miss_rates() {
        // The paper: across distributions and sizes, L3 miss rates range
        // from <10% to >80%. Check the spread exists at two sizes.
        let c = cfg();
        let mut rates = Vec::new();
        for nd in table2() {
            for ratio in [1.6, 3.6] {
                let p = ProbeCfg::for_machine(&c, nd.dist, ratio, 1);
                rates.push(run_probe(&c, &p, |_| Vec::new()).l3_miss_rate);
            }
        }
        let min = rates.iter().cloned().fold(f64::MAX, f64::min);
        let max = rates.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < 0.35, "most concentrated case mr={min:.3}");
        assert!(max > 0.6, "most dispersed case mr={max:.3}");
    }
}
