//! The paper's analytic cache model (Eqs. 2–4) and its inversion.
//!
//! For the Fig. 4 benchmark sampling indices i.i.d. from a distribution
//! with mass function `f`, the steady-state Expected Hit Rate on a fully
//! associative cache of capacity `C` is (paper Eq. 4):
//!
//! ```text
//! EHR = C · Σᵢ f(i)²
//! ```
//!
//! We evaluate the sum at **cache-line granularity**: the unit that
//! occupies the cache is a line, and a line's access mass is the sum of
//! its elements' masses — this is precisely how the paper's σ-dependent
//! "spatial locality" enters the model. The sum is computed exactly from
//! CDF differences, no sampling involved.
//!
//! Inverting the formula converts a *measured* miss rate into the
//! *effective* cache capacity the benchmark enjoyed — the instrument the
//! paper uses in §III-C3 to quantify how much storage each CSThr level
//! steals (Fig. 6):
//!
//! ```text
//! C_eff = (1 − miss_rate) / Σ g(ℓ)²
//! ```
//!
//! Like the paper's, the model assumes (a) the buffer exceeds the cache,
//! (b) steady state, and (c) full associativity. Assumption (c) makes it
//! under-predict hit rates for small buffers — visible on the left edge of
//! Fig. 5 — which is faithfully reproduced here. [`expected_hit_rate_clamped`]
//! is our extension that bounds per-line presence probability at 1.

use crate::dist::AccessDist;

/// Per-line access masses `g(ℓ)` for a buffer of `buffer_bytes` holding
/// `elem_bytes`-sized elements packed into `line_bytes` lines.
pub fn line_masses(
    dist: &AccessDist,
    buffer_bytes: u64,
    elem_bytes: u64,
    line_bytes: u64,
) -> Vec<f64> {
    assert!(elem_bytes > 0 && line_bytes >= elem_bytes);
    let n_lines = buffer_bytes.div_ceil(line_bytes);
    let total = buffer_bytes as f64;
    (0..n_lines)
        .map(|l| {
            let lo = (l * line_bytes) as f64 / total;
            let hi = (((l + 1) * line_bytes).min(buffer_bytes)) as f64 / total;
            dist.cdf(hi) - dist.cdf(lo)
        })
        .collect()
}

/// `Σ g(ℓ)²` — the distribution-dependent constant of Eq. 4.
pub fn sum_sq_line_mass(
    dist: &AccessDist,
    buffer_bytes: u64,
    elem_bytes: u64,
    line_bytes: u64,
) -> f64 {
    line_masses(dist, buffer_bytes, elem_bytes, line_bytes)
        .iter()
        .map(|g| g * g)
        .sum()
}

/// Paper Eq. 4: expected hit rate for `cache_lines` of capacity.
/// Clamped to [0, 1] only for numerical hygiene (the paper's assumptions
/// keep it below 1).
pub fn expected_hit_rate(cache_lines: u64, ssq: f64) -> f64 {
    (cache_lines as f64 * ssq).clamp(0.0, 1.0)
}

/// `1 − EHR`.
pub fn expected_miss_rate(cache_lines: u64, ssq: f64) -> f64 {
    1.0 - expected_hit_rate(cache_lines, ssq)
}

/// Extension: per-line presence probability bounded at 1
/// (`EHR = Σ g·min(1, C·g)`), which fixes the over-prediction Eq. 4
/// suffers for strongly concentrated distributions. Used in the model
/// ablation bench, not in the paper-faithful figures.
pub fn expected_hit_rate_clamped(cache_lines: u64, masses: &[f64]) -> f64 {
    let c = cache_lines as f64;
    // The capacity used by saturated lines (presence = 1) is unavailable
    // to the rest; a two-pass waterfill keeps the budget honest.
    let mut saturated = 0.0f64;
    let mut free_mass_sq = 0.0f64;
    // One refinement pass is enough in practice for these distributions.
    for _ in 0..8 {
        let budget = (c - saturated).max(0.0);
        let mut new_sat = 0.0;
        let mut fms = 0.0;
        for &g in masses {
            if budget * g >= 1.0 {
                new_sat += 1.0;
            } else {
                fms += g * g;
            }
        }
        if (new_sat - saturated).abs() < 0.5 {
            saturated = new_sat;
            free_mass_sq = fms;
            break;
        }
        saturated = new_sat;
        free_mass_sq = fms;
    }
    let budget = (c - saturated).max(0.0);
    let sat_mass: f64 = masses.iter().filter(|&&g| budget * g >= 1.0).sum();
    (sat_mass + budget * free_mass_sq).clamp(0.0, 1.0)
}

/// Invert Eq. 4: effective cache capacity (in lines) that explains a
/// measured miss rate.
pub fn effective_cache_lines(measured_miss_rate: f64, ssq: f64) -> f64 {
    assert!(ssq > 0.0);
    ((1.0 - measured_miss_rate) / ssq).max(0.0)
}

/// Same, in bytes.
pub fn effective_cache_bytes(measured_miss_rate: f64, ssq: f64, line_bytes: u64) -> f64 {
    effective_cache_lines(measured_miss_rate, ssq) * line_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::table2;

    const MB: u64 = 1 << 20;

    #[test]
    fn masses_sum_to_one() {
        for nd in table2() {
            let m = line_masses(&nd.dist, 32 * MB, 4, 64);
            let s: f64 = m.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{}: Σg = {s}", nd.name);
        }
    }

    #[test]
    fn uniform_closed_form() {
        // Uniform over L lines: Σ g² = L · (1/L)² = 1/L, so
        // EHR = C/L — the classic "cache fraction of buffer" result.
        let buffer = 40 * MB;
        let lines = buffer / 64;
        let ssq = sum_sq_line_mass(&crate::dist::AccessDist::Uniform, buffer, 4, 64);
        assert!((ssq - 1.0 / lines as f64).abs() < 1e-12);
        let cache_lines = 20 * MB / 64;
        let ehr = expected_hit_rate(cache_lines, ssq);
        assert!((ehr - 0.5).abs() < 1e-9, "20MB cache / 40MB buffer = 0.5");
    }

    #[test]
    fn concentration_raises_hit_rate() {
        // Narrower distributions have larger Σg² hence higher EHR.
        let buffer = 48 * MB;
        let cache_lines = 20 * MB / 64;
        let t = table2();
        let ehr_of =
            |i: usize| expected_hit_rate(cache_lines, sum_sq_line_mass(&t[i].dist, buffer, 4, 64));
        let norm4 = ehr_of(0);
        let norm8 = ehr_of(2);
        let uni = ehr_of(9);
        assert!(norm8 > norm4, "σ=n/8 beats σ=n/4");
        assert!(norm4 > uni, "any concentration beats uniform");
    }

    #[test]
    fn miss_rate_rises_with_buffer_size() {
        // The paper: "cache miss rates rise as the buffer size increases".
        let d = table2()[3].dist; // Exp_4
        let cache_lines = 20 * MB / 64;
        let mr30 = expected_miss_rate(cache_lines, sum_sq_line_mass(&d, 30 * MB, 4, 64));
        let mr74 = expected_miss_rate(cache_lines, sum_sq_line_mass(&d, 74 * MB, 4, 64));
        assert!(mr74 > mr30);
    }

    #[test]
    fn inversion_roundtrip() {
        for nd in table2() {
            let ssq = sum_sq_line_mass(&nd.dist, 60 * MB, 4, 64);
            let cache_lines = 12 * MB / 64;
            let mr = expected_miss_rate(cache_lines, ssq);
            let back = effective_cache_lines(mr, ssq);
            assert!(
                (back - cache_lines as f64).abs() < 1.0,
                "{}: {back} vs {cache_lines}",
                nd.name
            );
        }
    }

    #[test]
    fn clamped_model_bounded_and_uniform_exact() {
        // The clamped variant must stay a probability, agree with Eq. 4
        // exactly when no line saturates (uniform), and grow with cache
        // capacity.
        let buffer = 64 * MB;
        let cache_lines = 10 * MB / 64;
        for nd in table2() {
            let masses = line_masses(&nd.dist, buffer, 4, 64);
            let small = expected_hit_rate_clamped(cache_lines / 4, &masses);
            let big = expected_hit_rate_clamped(cache_lines, &masses);
            assert!((0.0..=1.0).contains(&small), "{}", nd.name);
            assert!((0.0..=1.0).contains(&big), "{}", nd.name);
            assert!(big >= small - 1e-9, "{}: not monotone in C", nd.name);
        }
        let masses = line_masses(&crate::dist::AccessDist::Uniform, buffer, 4, 64);
        let ssq: f64 = masses.iter().map(|g| g * g).sum();
        let paper = expected_hit_rate(cache_lines, ssq);
        let clamped = expected_hit_rate_clamped(cache_lines, &masses);
        assert!((paper - clamped).abs() < 1e-9);
    }

    #[test]
    fn partial_last_line_handled() {
        // Buffer not a multiple of the line size: masses still sum to 1.
        let m = line_masses(&crate::dist::AccessDist::Uniform, 1000, 4, 64);
        assert_eq!(m.len(), 16);
        let s: f64 = m.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        // The last (40-byte) line has less mass than a full one.
        assert!(m[15] < m[0]);
    }
}
