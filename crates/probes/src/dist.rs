//! The access-pattern distributions of Table II.
//!
//! Each distribution describes how the Fig. 4 benchmark picks buffer
//! indices. Parameters are stored as *fractions of the buffer length* `n`
//! (the paper writes them the same way: µ = n/2, σ = n/4, λ = 4/n, ...),
//! so one preset drives any buffer size.
//!
//! The continuous CDF — truncated to the buffer, because sampling rejects
//! out-of-range draws — serves double duty: it drives inverse/rejection
//! sampling in the benchmark *and* supplies the probability masses `f(i)`
//! for the analytic model of Eq. 4. Using the same object for both is what
//! makes the validation in Fig. 5 meaningful.

use amem_sim::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// A probability distribution over buffer positions, on the unit interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessDist {
    /// Normal(µ, σ), truncated to [0, 1). Paper rows: Norm_4/6/8 with
    /// µ = 1/2 and σ = 1/4, 1/6, 1/8.
    Normal { mu: f64, sigma: f64 },
    /// Exponential with rate `k` per buffer length (λ = k/n), truncated to
    /// [0, 1). Paper rows: Exp_4/6/8 with k = 4, 6, 8.
    Exponential { rate: f64 },
    /// Triangular on [0, 1) with the given mode. Paper rows: Tri_1/2/3
    /// with modes 0.4, 0.6, 0.8.
    Triangular { mode: f64 },
    /// Uniform over the whole buffer. Paper row: Uni.
    Uniform,
    /// Bounded Pareto (continuous Zipf-like heavy tail) on [x_min, 1):
    /// density ∝ x^(-alpha-1). An *extension* beyond Table II covering
    /// the skewed-popularity patterns of key-value and graph workloads.
    Pareto { alpha: f64, x_min: f64 },
    /// Two-component Gaussian mixture (equal weights) — an extension for
    /// workloads with two distinct hot regions.
    Bimodal { mu1: f64, mu2: f64, sigma: f64 },
}

/// erf via Abramowitz & Stegun 7.1.26 (max abs error ≈ 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF.
fn phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

impl AccessDist {
    /// Raw (untruncated) CDF of the underlying continuous distribution.
    fn raw_cdf(&self, x: f64) -> f64 {
        match *self {
            AccessDist::Normal { mu, sigma } => phi((x - mu) / sigma),
            AccessDist::Exponential { rate } => {
                if x <= 0.0 {
                    0.0
                } else {
                    1.0 - (-rate * x).exp()
                }
            }
            AccessDist::Triangular { mode } => {
                if x <= 0.0 {
                    0.0
                } else if x >= 1.0 {
                    1.0
                } else if x <= mode {
                    x * x / mode
                } else {
                    1.0 - (1.0 - x) * (1.0 - x) / (1.0 - mode)
                }
            }
            AccessDist::Uniform => x.clamp(0.0, 1.0),
            AccessDist::Pareto { alpha, x_min } => {
                if x <= x_min {
                    0.0
                } else {
                    // CDF of Pareto(alpha, x_min), un-truncated.
                    1.0 - (x_min / x).powf(alpha)
                }
            }
            AccessDist::Bimodal { mu1, mu2, sigma } => {
                0.5 * phi((x - mu1) / sigma) + 0.5 * phi((x - mu2) / sigma)
            }
        }
    }

    /// CDF truncated (re-normalized) to [0, 1]: `cdf(0) = 0`, `cdf(1) = 1`.
    /// This is the distribution the benchmark actually samples from.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        if x >= 1.0 {
            return 1.0;
        }
        let lo = self.raw_cdf(0.0);
        let hi = self.raw_cdf(1.0);
        ((self.raw_cdf(x) - lo) / (hi - lo)).clamp(0.0, 1.0)
    }

    /// Sample a position in [0, 1).
    pub fn sample_frac(&self, rng: &mut Xoshiro256) -> f64 {
        match *self {
            AccessDist::Normal { mu, sigma } => loop {
                let x = mu + sigma * rng.next_normal();
                if (0.0..1.0).contains(&x) {
                    return x;
                }
            },
            AccessDist::Exponential { rate } => {
                // Direct inverse of the truncated CDF.
                let u = rng.next_f64();
                let z = 1.0 - (-rate).exp();
                (-(1.0 - u * z).ln() / rate).min(1.0 - f64::EPSILON)
            }
            AccessDist::Triangular { mode } => {
                let u = rng.next_f64();
                if u <= mode {
                    (u * mode).sqrt()
                } else {
                    1.0 - ((1.0 - u) * (1.0 - mode)).sqrt()
                }
            }
            AccessDist::Uniform => rng.next_f64(),
            AccessDist::Pareto { alpha, x_min } => {
                // Inverse CDF of the [x_min, 1)-truncated bounded Pareto.
                let u = rng.next_f64();
                let fmax = 1.0 - x_min.powf(alpha); // raw_cdf(1.0)
                let x = x_min / (1.0 - u * fmax).powf(1.0 / alpha);
                x.min(1.0 - f64::EPSILON)
            }
            AccessDist::Bimodal { mu1, mu2, sigma } => loop {
                let mu = if rng.next_f64() < 0.5 { mu1 } else { mu2 };
                let x = mu + sigma * rng.next_normal();
                if (0.0..1.0).contains(&x) {
                    return x;
                }
            },
        }
    }

    /// Sample a buffer index in `[0, n)`.
    pub fn sample_index(&self, rng: &mut Xoshiro256, n: u64) -> u64 {
        ((self.sample_frac(rng) * n as f64) as u64).min(n - 1)
    }

    /// Standard deviation of the *untruncated* distribution, as a fraction
    /// of the buffer length (the "Standard Deviation" column of Table II).
    pub fn std_dev_frac(&self) -> f64 {
        match *self {
            AccessDist::Normal { sigma, .. } => sigma,
            AccessDist::Exponential { rate } => 1.0 / rate,
            AccessDist::Triangular { mode } => {
                // Var of Tri(0, m, 1) = (1 - m + m²) / 18.
                ((1.0 - mode + mode * mode) / 18.0).sqrt()
            }
            AccessDist::Uniform => (1.0f64 / 12.0).sqrt(),
            AccessDist::Pareto { alpha, x_min } => {
                // Untruncated Pareto variance (finite for alpha > 2);
                // report the buffer width otherwise.
                if alpha > 2.0 {
                    let m = alpha * x_min / (alpha - 1.0);
                    let v = x_min * x_min * alpha / ((alpha - 1.0) * (alpha - 1.0) * (alpha - 2.0));
                    let _ = m;
                    v.sqrt()
                } else {
                    1.0
                }
            }
            AccessDist::Bimodal { mu1, mu2, sigma } => {
                // Mixture variance: E[var] + var of means.
                let mean = 0.5 * (mu1 + mu2);
                let between = 0.5 * ((mu1 - mean).powi(2) + (mu2 - mean).powi(2));
                (sigma * sigma + between).sqrt()
            }
        }
    }
}

/// A Table II row.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct NamedDist {
    pub name: &'static str,
    pub dist: AccessDist,
}

/// Extension presets beyond Table II: heavy-tail and bimodal patterns.
pub fn extensions() -> Vec<NamedDist> {
    vec![
        NamedDist {
            name: "Zipf_1.2",
            dist: AccessDist::Pareto {
                alpha: 1.2,
                x_min: 1e-4,
            },
        },
        NamedDist {
            name: "Zipf_2.5",
            dist: AccessDist::Pareto {
                alpha: 2.5,
                x_min: 1e-3,
            },
        },
        NamedDist {
            name: "Bimodal",
            dist: AccessDist::Bimodal {
                mu1: 0.25,
                mu2: 0.75,
                sigma: 0.08,
            },
        },
    ]
}

/// The ten distributions of Table II.
pub fn table2() -> Vec<NamedDist> {
    vec![
        NamedDist {
            name: "Norm_4",
            dist: AccessDist::Normal {
                mu: 0.5,
                sigma: 0.25,
            },
        },
        NamedDist {
            name: "Norm_6",
            dist: AccessDist::Normal {
                mu: 0.5,
                sigma: 1.0 / 6.0,
            },
        },
        NamedDist {
            name: "Norm_8",
            dist: AccessDist::Normal {
                mu: 0.5,
                sigma: 0.125,
            },
        },
        NamedDist {
            name: "Exp_4",
            dist: AccessDist::Exponential { rate: 4.0 },
        },
        NamedDist {
            name: "Exp_6",
            dist: AccessDist::Exponential { rate: 6.0 },
        },
        NamedDist {
            name: "Exp_8",
            dist: AccessDist::Exponential { rate: 8.0 },
        },
        NamedDist {
            name: "Tri_1",
            dist: AccessDist::Triangular { mode: 0.4 },
        },
        NamedDist {
            name: "Tri_2",
            dist: AccessDist::Triangular { mode: 0.6 },
        },
        NamedDist {
            name: "Tri_3",
            dist: AccessDist::Triangular { mode: 0.8 },
        },
        NamedDist {
            name: "Uni",
            dist: AccessDist::Uniform,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256 {
        Xoshiro256::seed_from_u64(12345)
    }

    #[test]
    fn erf_reference_points() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
    }

    #[test]
    fn cdfs_are_proper() {
        for nd in table2() {
            let d = nd.dist;
            assert_eq!(d.cdf(0.0), 0.0, "{}", nd.name);
            assert_eq!(d.cdf(1.0), 1.0, "{}", nd.name);
            let mut prev = 0.0;
            for i in 0..=100 {
                let x = i as f64 / 100.0;
                let c = d.cdf(x);
                assert!(c >= prev - 1e-12, "{} not monotone at {x}", nd.name);
                prev = c;
            }
        }
    }

    #[test]
    fn samples_match_cdf() {
        // Empirical CDF vs analytic CDF at several quantiles, for every
        // Table II distribution (Kolmogorov-style check).
        let mut r = rng();
        for nd in table2() {
            let n = 40_000;
            let mut xs: Vec<f64> = (0..n).map(|_| nd.dist.sample_frac(&mut r)).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
                let x = xs[(q * n as f64) as usize];
                let c = nd.dist.cdf(x);
                assert!(
                    (c - q).abs() < 0.02,
                    "{}: cdf({x:.4}) = {c:.4}, expected ≈ {q}",
                    nd.name
                );
            }
        }
    }

    #[test]
    fn sample_index_in_range() {
        let mut r = rng();
        for nd in table2() {
            for _ in 0..1000 {
                let i = nd.dist.sample_index(&mut r, 1000);
                assert!(i < 1000, "{}", nd.name);
            }
        }
    }

    #[test]
    fn table2_has_ten_rows_with_decreasing_normal_spread() {
        let t = table2();
        assert_eq!(t.len(), 10);
        assert!(t[0].dist.std_dev_frac() > t[1].dist.std_dev_frac());
        assert!(t[1].dist.std_dev_frac() > t[2].dist.std_dev_frac());
    }

    #[test]
    fn concentration_orders_by_sigma() {
        // Smaller σ ⇒ more mass near the center ⇒ larger CDF increase
        // around µ.
        let wide = AccessDist::Normal {
            mu: 0.5,
            sigma: 0.25,
        };
        let narrow = AccessDist::Normal {
            mu: 0.5,
            sigma: 0.125,
        };
        let mass_wide = wide.cdf(0.6) - wide.cdf(0.4);
        let mass_narrow = narrow.cdf(0.6) - narrow.cdf(0.4);
        assert!(mass_narrow > mass_wide);
    }

    #[test]
    fn exponential_mass_concentrated_at_origin() {
        let d = AccessDist::Exponential { rate: 8.0 };
        assert!(d.cdf(0.125) > 0.6, "first 1/8 should hold most mass");
    }

    #[test]
    fn pareto_is_heavy_headed() {
        let d = AccessDist::Pareto {
            alpha: 1.2,
            x_min: 1e-4,
        };
        // Most of the truncated mass sits in a tiny prefix.
        assert!(d.cdf(0.01) > 0.5, "cdf(0.01) = {}", d.cdf(0.01));
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.cdf(1.0), 1.0);
    }

    #[test]
    fn extension_samples_match_cdf() {
        let mut r = rng();
        for nd in extensions() {
            let n = 40_000;
            let mut xs: Vec<f64> = (0..n).map(|_| nd.dist.sample_frac(&mut r)).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for q in [0.25, 0.5, 0.75] {
                let x = xs[(q * n as f64) as usize];
                let c = nd.dist.cdf(x);
                assert!(
                    (c - q).abs() < 0.02,
                    "{}: cdf({x:.4}) = {c:.4}, expected ≈ {q}",
                    nd.name
                );
            }
        }
    }

    #[test]
    fn bimodal_has_two_hot_regions() {
        let d = AccessDist::Bimodal {
            mu1: 0.25,
            mu2: 0.75,
            sigma: 0.08,
        };
        let mass = |a: f64, b: f64| d.cdf(b) - d.cdf(a);
        assert!(mass(0.15, 0.35) > 0.3);
        assert!(mass(0.65, 0.85) > 0.3);
        assert!(mass(0.45, 0.55) < 0.1, "valley between modes");
    }

    #[test]
    fn triangular_mode_position() {
        // Density peaks at the mode: CDF slope is maximal there.
        let d = AccessDist::Triangular { mode: 0.8 };
        let slope_at = |x: f64| (d.cdf(x + 0.01) - d.cdf(x - 0.01)) / 0.02;
        assert!(slope_at(0.8) > slope_at(0.2));
        assert!(slope_at(0.8) > slope_at(0.99));
    }
}
