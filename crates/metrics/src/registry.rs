//! The metric primitives and the label-aware registry.
//!
//! Three metric kinds, all mutated with plain atomics once resolved:
//!
//! * [`Counter`] — monotonic `u64`, sharded across cache-line-padded slots
//!   indexed by a per-thread id so concurrent increments from different
//!   threads never contend on one line. `get()` sums the shards, so totals
//!   are exact (each increment lands in exactly one shard).
//! * [`Gauge`] — a point-in-time `i64` (set semantics cannot shard).
//! * [`Histogram`] — the same power-of-two bucketing as
//!   `amem_sim::telemetry::CycleHistogram`: bucket 0 holds zeros, bucket
//!   `i >= 1` holds `[2^(i-1), 2^i)`, 65 buckets cover all of `u64`. The
//!   running `sum` saturates instead of wrapping.
//!
//! Series are keyed by metric name plus *sorted* `(key, value)` label pairs,
//! so `[("a","1"),("b","2")]` and `[("b","2"),("a","1")]` resolve to the
//! same series. Per name, at most `series_cap` distinct label sets are kept;
//! further label sets collapse into one `overflow="true"` series so a
//! runaway label (say, a per-point id) cannot grow memory without bound
//! while per-name totals stay correct.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use serde::{Deserialize, Serialize};

/// Bucket count shared with `CycleHistogram`: zeros + one bucket per
/// power-of-two up to `2^64`.
pub const HIST_BUCKETS: usize = 65;

/// Default per-name cap on distinct label sets.
pub const DEFAULT_SERIES_CAP: usize = 256;

/// Label key/value marking the collapsed past-the-cap series.
pub const OVERFLOW_LABEL: (&str, &str) = ("overflow", "true");

const COUNTER_SHARDS: usize = 16;

/// One shard on its own cache line so concurrent writers don't false-share.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

static NEXT_THREAD_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Round-robin shard assignment; stable for a thread's lifetime.
    static THREAD_SHARD: usize =
        NEXT_THREAD_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
}

/// CAS loop because `fetch_add` wraps: a saturated sum must stay pinned at
/// `u64::MAX`, not roll over.
fn saturating_fetch_add(cell: &AtomicU64, v: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(v);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Monotonic counter with per-thread sharding. Exact under concurrency:
/// every `add` lands in exactly one shard and `get` sums all shards.
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| PaddedU64(AtomicU64::new(0))),
        }
    }

    #[inline]
    pub fn add(&self, v: u64) {
        THREAD_SHARD.with(|&s| self.shards[s].0.fetch_add(v, Ordering::Relaxed));
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.shards.iter().fold(0u64, |acc, s| {
            acc.saturating_add(s.0.load(Ordering::Relaxed))
        })
    }
}

/// Point-in-time value. Unsharded: `set` semantics need a single slot.
pub struct Gauge(AtomicI64);

impl Gauge {
    fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, v: i64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Which power-of-two bucket holds `v` (same law as `CycleHistogram`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Upper inclusive bound of bucket `i` (`0` for the zeros bucket,
/// `2^i - 1` otherwise).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (((1u128) << i) - 1) as u64
    }
}

/// Exponential-bucket histogram of `u64` samples (cycle counts,
/// nanoseconds, queue depths — anything non-negative).
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        saturating_fetch_add(&self.sum, v);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Fold in a histogram that was already bucketed under the same
    /// power-of-two law (e.g. `amem_sim::telemetry::CycleHistogram`):
    /// per-bucket counts add, `sum` saturates, `max` takes the max.
    /// Buckets past [`HIST_BUCKETS`] are ignored (none exist under the law).
    pub fn merge_counts(&self, counts: &[u64], sum: u64, max: u64) {
        let mut total = 0u64;
        for (i, &c) in counts.iter().enumerate().take(HIST_BUCKETS) {
            if c > 0 {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
                total = total.saturating_add(c);
            }
        }
        if total > 0 {
            self.count.fetch_add(total, Ordering::Relaxed);
            saturating_fetch_add(&self.sum, sum);
            self.max.fetch_max(max, Ordering::Relaxed);
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> Kind {
        match self {
            Metric::Counter(_) => Kind::Counter,
            Metric::Gauge(_) => Kind::Gauge,
            Metric::Histogram(_) => Kind::Histogram,
        }
    }
}

struct Family {
    kind: Kind,
    series: BTreeMap<Vec<(String, String)>, Metric>,
}

/// The registry: metric families keyed by name, series keyed by sorted
/// labels. Mutation of resolved series is lock-free; resolution itself
/// takes a read lock (write lock only the first time a series is seen).
pub struct Registry {
    families: RwLock<BTreeMap<String, Family>>,
    series_cap: usize,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn canonical_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut v: Vec<(String, String)> = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

impl Registry {
    pub fn new() -> Self {
        Self::with_series_cap(DEFAULT_SERIES_CAP)
    }

    pub fn with_series_cap(series_cap: usize) -> Self {
        assert!(series_cap >= 1, "series cap must admit at least one series");
        Self {
            families: RwLock::new(BTreeMap::new()),
            series_cap,
        }
    }

    fn resolve(&self, name: &str, labels: &[(&str, &str)], kind: Kind) -> Metric {
        let key = canonical_labels(labels);
        {
            let fams = self.families.read().expect("metrics registry poisoned");
            if let Some(f) = fams.get(name) {
                assert_eq!(
                    f.kind,
                    kind,
                    "metric {name:?} resolved as {} but registered as {}",
                    kind.as_str(),
                    f.kind.as_str()
                );
                if let Some(m) = f.series.get(&key) {
                    return m.clone();
                }
            }
        }
        let mut fams = self.families.write().expect("metrics registry poisoned");
        let f = fams.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            f.kind,
            kind,
            "metric {name:?} resolved as {} but registered as {}",
            kind.as_str(),
            f.kind.as_str()
        );
        // Past the cap, unseen label sets share one overflow series so the
        // family's total stays right while its memory stays bounded.
        let key = if f.series.len() >= self.series_cap && !f.series.contains_key(&key) {
            canonical_labels(&[OVERFLOW_LABEL])
        } else {
            key
        };
        f.series
            .entry(key)
            .or_insert_with(|| match kind {
                Kind::Counter => Metric::Counter(Arc::new(Counter::new())),
                Kind::Gauge => Metric::Gauge(Arc::new(Gauge::new())),
                Kind::Histogram => Metric::Histogram(Arc::new(Histogram::new())),
            })
            .clone()
    }

    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.resolve(name, labels, Kind::Counter) {
            Metric::Counter(c) => c,
            _ => unreachable!("resolve enforces kind"),
        }
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.resolve(name, labels, Kind::Gauge) {
            Metric::Gauge(g) => g,
            _ => unreachable!("resolve enforces kind"),
        }
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.resolve(name, labels, Kind::Histogram) {
            Metric::Histogram(h) => h,
            _ => unreachable!("resolve enforces kind"),
        }
    }

    /// How many series exist under `name` (testing / cap introspection).
    pub fn series_count(&self, name: &str) -> usize {
        self.families
            .read()
            .expect("metrics registry poisoned")
            .get(name)
            .map(|f| f.series.len())
            .unwrap_or(0)
    }

    /// Deterministically ordered snapshot (by name, then sorted labels).
    pub fn snapshot(&self) -> Snapshot {
        let fams = self.families.read().expect("metrics registry poisoned");
        let mut series = Vec::new();
        for (name, f) in fams.iter() {
            for (labels, m) in f.series.iter() {
                let mut s = SeriesSnapshot {
                    name: name.clone(),
                    labels: labels.clone(),
                    kind: m.kind().as_str().to_string(),
                    counter: None,
                    gauge: None,
                    histogram: None,
                };
                match m {
                    Metric::Counter(c) => s.counter = Some(c.get()),
                    Metric::Gauge(g) => s.gauge = Some(g.get()),
                    Metric::Histogram(h) => s.histogram = Some(h.snapshot()),
                }
                series.push(s);
            }
        }
        Snapshot { series }
    }

    /// Drop all families. Outstanding handles keep working but are no
    /// longer exported.
    pub fn reset(&self) {
        self.families
            .write()
            .expect("metrics registry poisoned")
            .clear();
    }
}

/// Point-in-time copy of one histogram. `buckets[i]` follows the
/// `CycleHistogram` law (trailing zero buckets trimmed).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn merge(&mut self, o: &HistogramSnapshot) {
        if self.buckets.len() < o.buckets.len() {
            self.buckets.resize(o.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(o.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(o.count);
        self.sum = self.sum.saturating_add(o.sum);
        self.max = self.max.max(o.max);
    }
}

/// One exported series: exactly one of `counter` / `gauge` / `histogram`
/// is populated, matching `kind`. Options rather than an enum payload keep
/// the serialized shape additive-friendly for the manifest schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub kind: String,
    pub counter: Option<u64>,
    pub gauge: Option<i64>,
    pub histogram: Option<HistogramSnapshot>,
}

/// A full registry snapshot: deterministically ordered, serializable,
/// mergeable across runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    pub series: Vec<SeriesSnapshot>,
}

impl Snapshot {
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesSnapshot> {
        let key = canonical_labels(labels);
        self.series
            .iter()
            .find(|s| s.name == name && s.labels == key)
    }

    /// Value of one counter series, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.find(name, labels).and_then(|s| s.counter)
    }

    /// Sum of a counter family across all its label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.series
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| s.counter)
            .fold(0u64, |a, v| a.saturating_add(v))
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        self.find(name, labels).and_then(|s| s.gauge)
    }

    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.find(name, labels).and_then(|s| s.histogram.as_ref())
    }

    /// Merge another snapshot into this one: counters and histogram moments
    /// add (saturating), gauges keep the max (a merged queue-depth gauge
    /// reads as the suite's high-water mark), unseen series are adopted.
    pub fn merge(&mut self, other: &Snapshot) {
        for o in &other.series {
            match self
                .series
                .iter_mut()
                .find(|s| s.name == o.name && s.labels == o.labels && s.kind == o.kind)
            {
                Some(s) => {
                    if let (Some(a), Some(b)) = (s.counter, o.counter) {
                        s.counter = Some(a.saturating_add(b));
                    }
                    if let (Some(a), Some(b)) = (s.gauge, o.gauge) {
                        s.gauge = Some(a.max(b));
                    }
                    if let (Some(a), Some(b)) = (s.histogram.as_mut(), o.histogram.as_ref()) {
                        a.merge(b);
                    }
                }
                None => self.series.push(o.clone()),
            }
        }
        self.series
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_shards_exactly() {
        let r = Registry::new();
        let c = r.counter("c_total", &[]);
        for _ in 0..1000 {
            c.inc();
        }
        c.add(24);
        assert_eq!(c.get(), 1024);
        assert_eq!(r.snapshot().counter("c_total", &[]), Some(1024));
    }

    #[test]
    fn labels_are_order_insensitive() {
        let r = Registry::new();
        r.counter("x", &[("a", "1"), ("b", "2")]).inc();
        r.counter("x", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(r.series_count("x"), 1);
        assert_eq!(
            r.snapshot().counter("x", &[("a", "1"), ("b", "2")]),
            Some(2)
        );
    }

    #[test]
    fn gauge_set_add() {
        let r = Registry::new();
        let g = r.gauge("depth", &[]);
        g.set(7);
        g.dec();
        g.add(-2);
        assert_eq!(g.get(), 4);
        assert_eq!(r.snapshot().gauge("depth", &[]), Some(4));
    }

    #[test]
    fn histogram_bucket_law_matches_cycle_histogram() {
        // Same boundary cases as telemetry::CycleHistogram's unit test.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_sum_saturates() {
        let r = Registry::new();
        let h = r.histogram("h", &[]);
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = r.snapshot();
        let hs = s.histogram("h", &[]).unwrap();
        assert_eq!(hs.sum, u64::MAX);
        assert_eq!(hs.count, 2);
        assert_eq!(hs.max, u64::MAX);
        assert_eq!(hs.buckets.len(), HIST_BUCKETS);
        assert_eq!(hs.buckets[64], 2);
    }

    #[test]
    fn snapshot_trims_trailing_zero_buckets() {
        let r = Registry::new();
        r.histogram("h", &[]).record(5); // bucket 3
        let s = r.snapshot();
        assert_eq!(s.histogram("h", &[]).unwrap().buckets, vec![0, 0, 0, 1]);
    }

    #[test]
    fn series_cap_collapses_into_overflow() {
        let r = Registry::with_series_cap(4);
        for i in 0..10 {
            r.counter("capped", &[("id", &i.to_string())]).inc();
        }
        // 4 real series + 1 overflow.
        assert_eq!(r.series_count("capped"), 5);
        let s = r.snapshot();
        assert_eq!(s.counter("capped", &[OVERFLOW_LABEL]), Some(6));
        assert_eq!(s.counter_total("capped"), 10);
        // An already-admitted series keeps resolving to itself.
        r.counter("capped", &[("id", "0")]).inc();
        assert_eq!(r.snapshot().counter("capped", &[("id", "0")]), Some(2));
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("same_name", &[]).inc();
        let _ = r.gauge("same_name", &[]);
    }

    #[test]
    fn merge_adds_counters_and_adopts_unseen() {
        let ra = Registry::new();
        ra.counter("c", &[("k", "a")]).add(3);
        ra.gauge("g", &[]).set(5);
        ra.histogram("h", &[]).record(8);
        let rb = Registry::new();
        rb.counter("c", &[("k", "a")]).add(4);
        rb.counter("c", &[("k", "b")]).add(1);
        rb.gauge("g", &[]).set(2);
        rb.histogram("h", &[]).record(16);
        let mut a = ra.snapshot();
        a.merge(&rb.snapshot());
        assert_eq!(a.counter("c", &[("k", "a")]), Some(7));
        assert_eq!(a.counter("c", &[("k", "b")]), Some(1));
        assert_eq!(a.gauge("g", &[]), Some(5)); // max
        let h = a.histogram("h", &[]).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 24);
    }

    #[test]
    fn merge_saturates_counters_and_histograms() {
        let ra = Registry::new();
        ra.counter("c", &[]).add(u64::MAX);
        ra.histogram("h", &[]).record(u64::MAX);
        let rb = Registry::new();
        rb.counter("c", &[]).add(2);
        rb.histogram("h", &[]).record(u64::MAX);
        let mut a = ra.snapshot();
        a.merge(&rb.snapshot());
        assert_eq!(a.counter("c", &[]), Some(u64::MAX));
        assert_eq!(a.histogram("h", &[]).unwrap().sum, u64::MAX);
    }

    #[test]
    fn snapshot_roundtrips_through_serde() {
        let r = Registry::new();
        r.counter("c", &[("k", "v")]).add(9);
        r.gauge("g", &[]).set(-3);
        r.histogram("h", &[]).record(100);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn reset_clears_export() {
        let r = Registry::new();
        r.counter("c", &[]).inc();
        r.reset();
        assert!(r.snapshot().is_empty());
    }
}
