//! Snapshot exporters: Prometheus text exposition format and JSONL, plus a
//! deliberately small Prometheus parser so CI can assert an export is
//! well-formed without a network scraper.

use crate::registry::{bucket_upper_bound, HistogramSnapshot, SeriesSnapshot, Snapshot};

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{}=\"{}\"", k, escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn push_histogram(out: &mut String, s: &SeriesSnapshot, h: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative = cumulative.saturating_add(c);
        let le = bucket_upper_bound(i).to_string();
        out.push_str(&format!(
            "{}_bucket{} {}\n",
            s.name,
            render_labels(&s.labels, Some(("le", &le))),
            cumulative
        ));
    }
    out.push_str(&format!(
        "{}_bucket{} {}\n",
        s.name,
        render_labels(&s.labels, Some(("le", "+Inf"))),
        h.count
    ));
    let plain = render_labels(&s.labels, None);
    out.push_str(&format!("{}_sum{} {}\n", s.name, plain, h.sum));
    out.push_str(&format!("{}_count{} {}\n", s.name, plain, h.count));
}

/// Render a snapshot in the Prometheus text exposition format (v0.0.4):
/// `# TYPE` headers, one `name{labels} value` sample per line, histograms
/// expanded into cumulative `_bucket{le=...}` plus `_sum`/`_count`.
/// Integer-valued samples print as integers so nothing is lost to `f64`.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for s in &snap.series {
        if last_name != Some(s.name.as_str()) {
            out.push_str(&format!("# TYPE {} {}\n", s.name, s.kind));
            last_name = Some(s.name.as_str());
        }
        match (&s.counter, &s.gauge, &s.histogram) {
            (Some(v), _, _) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    s.name,
                    render_labels(&s.labels, None),
                    v
                ));
            }
            (_, Some(v), _) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    s.name,
                    render_labels(&s.labels, None),
                    v
                ));
            }
            (_, _, Some(h)) => push_histogram(&mut out, s, h),
            _ => {}
        }
    }
    out
}

/// One JSON object per series per line — trivially ingestible with jq or
/// pandas, and the shape `repro_all` aggregates.
pub fn to_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for s in &snap.series {
        out.push_str(&serde_json::to_string(s).expect("series serializes"));
        out.push('\n');
    }
    out
}

/// One parsed sample line: metric name, labels as written, numeric value.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit()
}

/// Parsed label pairs plus the byte offset just past the closing `}`.
type ParsedLabels = (Vec<(String, String)>, usize);

/// Scan `k="v"` pairs in `s` (which starts just past the opening `{`),
/// handling `\\`/`\"`/`\n` escapes. Returns the labels and the byte offset
/// just past the closing `}`.
fn parse_labels(s: &str) -> Result<ParsedLabels, &'static str> {
    let mut labels = Vec::new();
    let mut pos = 0usize;
    loop {
        while s[pos..].starts_with(' ') {
            pos += 1;
        }
        if s[pos..].starts_with('}') {
            return Ok((labels, pos + 1));
        }
        let key_start = pos;
        while let Some(c) = s[pos..].chars().next() {
            if is_name_char(c) {
                pos += c.len_utf8();
            } else {
                break;
            }
        }
        if pos == key_start {
            return Err("bad label key");
        }
        let key = s[key_start..pos].to_string();
        if !s[pos..].starts_with('=') {
            return Err("expected '=' after label key");
        }
        pos += 1;
        if !s[pos..].starts_with('"') {
            return Err("label value must be quoted");
        }
        pos += 1;
        let mut val = String::new();
        let mut escaped = false;
        let mut closed = false;
        for c in s[pos..].chars() {
            pos += c.len_utf8();
            if escaped {
                val.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else {
                match c {
                    '\\' => escaped = true,
                    '"' => {
                        closed = true;
                        break;
                    }
                    other => val.push(other),
                }
            }
        }
        if !closed {
            return Err("unterminated label value");
        }
        labels.push((key, val));
        if s[pos..].starts_with(',') {
            pos += 1;
        } else if !s[pos..].starts_with('}') {
            return Err("expected ',' or '}' after label value");
        }
    }
}

fn parse_line(line: &str, lineno: usize) -> Result<PromSample, String> {
    let err = |msg: &str| format!("line {}: {} in {:?}", lineno, msg, line);
    if !line.chars().next().map(is_name_start).unwrap_or(false) {
        return Err(err("expected metric name"));
    }
    let mut name_end = 0;
    for (i, c) in line.char_indices() {
        if is_name_char(c) {
            name_end = i + c.len_utf8();
        } else {
            break;
        }
    }
    let name = line[..name_end].to_string();
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(stripped) = rest.strip_prefix('{') {
        let (labels, consumed) = parse_labels(stripped).map_err(err)?;
        (labels, &stripped[consumed..])
    } else {
        (Vec::new(), rest)
    };
    let value_str = rest.trim();
    if value_str.is_empty() {
        return Err(err("missing sample value"));
    }
    // Timestamps (a second numeric field) are not produced by our exporter;
    // reject them rather than silently misparse.
    if value_str.split_whitespace().count() != 1 {
        return Err(err("unexpected extra field after value"));
    }
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v
            .parse::<f64>()
            .map_err(|_| err("sample value is not a number"))?,
    };
    Ok(PromSample {
        name,
        labels,
        value,
    })
}

/// Parse Prometheus text exposition: comment/blank lines are skipped, every
/// other line must be a well-formed `name{labels} value` sample. Returns
/// every sample, or the first syntax error with its line number.
pub fn parse_prometheus_text(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_line(line, idx + 1)?);
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter("amem_req_total", &[("outcome", "hit")]).add(3);
        r.counter("amem_req_total", &[("outcome", "miss")]).add(1);
        r.gauge("amem_depth", &[]).set(-2);
        let h = r.histogram("amem_wait_ns", &[("kind", "dedup")]);
        h.record(0);
        h.record(1);
        h.record(1000);
        r.snapshot()
    }

    #[test]
    fn text_format_shape() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE amem_req_total counter"));
        assert!(text.contains("amem_req_total{outcome=\"hit\"} 3"));
        assert!(text.contains("amem_req_total{outcome=\"miss\"} 1"));
        assert!(text.contains("amem_depth -2"));
        assert!(text.contains("amem_wait_ns_bucket{kind=\"dedup\",le=\"0\"} 1"));
        assert!(text.contains("amem_wait_ns_bucket{kind=\"dedup\",le=\"1\"} 2"));
        assert!(text.contains("amem_wait_ns_bucket{kind=\"dedup\",le=\"1023\"} 3"));
        assert!(text.contains("amem_wait_ns_bucket{kind=\"dedup\",le=\"+Inf\"} 3"));
        assert!(text.contains("amem_wait_ns_sum{kind=\"dedup\"} 1001"));
        assert!(text.contains("amem_wait_ns_count{kind=\"dedup\"} 3"));
    }

    #[test]
    fn export_parses_back() {
        let snap = sample_snapshot();
        let samples = parse_prometheus_text(&prometheus_text(&snap)).unwrap();
        // 2 counters + 1 gauge + (3 buckets + Inf + sum + count) = 9.
        assert_eq!(samples.len(), 9);
        let hit = samples
            .iter()
            .find(|s| s.name == "amem_req_total" && s.labels == [("outcome".into(), "hit".into())])
            .unwrap();
        assert_eq!(hit.value, 3.0);
        let inf = samples
            .iter()
            .find(|s| s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf"))
            .unwrap();
        assert_eq!(inf.name, "amem_wait_ns_bucket");
        assert_eq!(inf.value, 3.0);
    }

    #[test]
    fn label_escaping_roundtrips() {
        let r = Registry::new();
        r.counter("c_total", &[("path", "a\\b \"q\"\nend")]).inc();
        let text = prometheus_text(&r.snapshot());
        let samples = parse_prometheus_text(&text).unwrap();
        assert_eq!(samples[0].labels[0].1, "a\\b \"q\"\nend");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_prometheus_text("123bad 1").is_err());
        assert!(parse_prometheus_text("name{k=unquoted} 1").is_err());
        assert!(parse_prometheus_text("name{k=\"v\"").is_err());
        assert!(parse_prometheus_text("name ").is_err());
        assert!(parse_prometheus_text("name 1 2 3").is_err());
        assert!(parse_prometheus_text("name notanumber").is_err());
        let err = parse_prometheus_text("ok 1\nbroken{").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn parser_skips_comments_and_blanks() {
        let text = "# HELP x y\n\n# TYPE c counter\nc 4\n";
        let samples = parse_prometheus_text(text).unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].name, "c");
        assert_eq!(samples[0].value, 4.0);
    }

    #[test]
    fn jsonl_one_line_per_series() {
        let snap = sample_snapshot();
        let jsonl = to_jsonl(&snap);
        assert_eq!(jsonl.lines().count(), snap.series.len());
        for line in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("name").is_some());
            assert!(v.get("kind").is_some());
        }
    }
}
