//! # amem-metrics — gated, label-aware metrics for the active-mem workspace
//!
//! The measurement methodology (Casas & Bronevetsky, IPDPS 2014) is itself a
//! measurement system, so its own cost structure must be observable: which
//! cache layer served a point, how long a probe-grid cell took, how busy the
//! simulated DRAM channel was. This crate is the substrate for that — a
//! process-wide registry of [`Counter`]s, [`Gauge`]s and exponential-bucket
//! [`Histogram`]s keyed by metric name plus sorted `(key, value)` labels,
//! with a phase-attribution profiler ([`mod@phase`]) layered on top.
//!
//! Three properties drive the design:
//!
//! * **Zero cost when disabled.** Every instrumentation site in the
//!   workspace is guarded by [`enabled()`] — a single relaxed atomic load.
//!   With the gate off (the default) no allocation, no lock, and no atomic
//!   RMW happens, so figure CSVs and executor cache keys stay byte-identical
//!   (asserted by the workspace's zero-perturbation test).
//! * **Lock-free hot path.** Mutating a resolved series is plain atomics:
//!   counters shard across cache-line-padded per-thread slots so concurrent
//!   increments never bounce one line, and totals are still exact. Series
//!   *resolution* takes a short `RwLock` (read-locked after first use);
//!   hot loops should resolve once and reuse the `Arc` handle.
//! * **Bounded cardinality.** Each metric name caps its label sets
//!   (default [`DEFAULT_SERIES_CAP`]); past the cap, new label sets collapse
//!   into a single `overflow="true"` series so totals remain correct while
//!   memory stays bounded.
//!
//! Snapshots ([`snapshot`]) are plain serde values: they attach to run
//! manifests as an additive schema field, merge across runs
//! ([`Snapshot::merge`]), and export as Prometheus text
//! ([`export::prometheus_text`]) or JSONL ([`export::to_jsonl`]). A tiny
//! parser ([`export::parse_prometheus_text`]) lets CI assert the export is
//! well-formed without any network or external scraper.
//!
//! ```
//! use amem_metrics::registry::Registry;
//!
//! let r = Registry::new();
//! r.counter("amem_requests_total", &[("outcome", "mem_hit")]).add(3);
//! r.histogram("amem_wait_ns", &[]).record(1024);
//! let snap = r.snapshot();
//! assert_eq!(snap.counter("amem_requests_total", &[("outcome", "mem_hit")]), Some(3));
//! let text = amem_metrics::export::prometheus_text(&snap);
//! assert!(text.contains("amem_requests_total{outcome=\"mem_hit\"} 3"));
//! ```

pub mod export;
pub mod phase;
pub mod registry;

pub use phase::{phase, PhaseCost, PhaseGuard, PHASE_CALLS, PHASE_NS};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, SeriesSnapshot, Snapshot,
    DEFAULT_SERIES_CAP,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Process-wide gate. Off by default; every instrumentation site in the
/// workspace checks this before touching the registry.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is metrics collection enabled? A single relaxed load — cheap enough to
/// leave on the hottest paths.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off. Flipping the gate does not clear previously
/// recorded series; use [`reset`] for that.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Enable collection if `$AMEM_METRICS` is set to anything other than
/// empty/`0`/`false`/`off`. Returns the resulting gate state.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("AMEM_METRICS") {
        let v = v.trim();
        let truthy = !(v.is_empty()
            || v == "0"
            || v.eq_ignore_ascii_case("false")
            || v.eq_ignore_ascii_case("off"));
        if truthy {
            set_enabled(true);
        }
    }
    enabled()
}

/// The process-wide registry all workspace instrumentation records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Snapshot the global registry (deterministically ordered by name, then
/// labels).
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Drop every series in the global registry. Handles resolved before the
/// reset keep working but stop being exported; workspace instrumentation
/// re-resolves on each use, so this is safe between test runs.
pub fn reset() {
    global().reset();
}
