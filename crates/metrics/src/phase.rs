//! Phase-attribution profiler: name a region of wall time, get per-phase
//! cost totals out of the same registry as every other metric.
//!
//! A [`phase`] guard records, on drop, elapsed nanoseconds into
//! [`PHASE_NS`] and a call count into [`PHASE_CALLS`], labelled
//! `phase="<name>"`. When the gate is off the guard is a true no-op: no
//! clock read, no allocation.
//!
//! Two namespaces coexist by convention (see DESIGN.md §12):
//!
//! * **Leaf phases** (`executor/...`, `sim/...`) partition wall time — on a
//!   single-threaded run their sum approaches the run's wall clock, which
//!   is how `amem-stats` computes attribution coverage.
//! * **Grid phases** (`grid/...`) are *views*: a probe-grid cell's phase
//!   overlaps the leaf phases running inside it, so grid totals answer
//!   "which CSThr level costs the most" but must not be added to leaf
//!   totals.

use std::time::Instant;

use crate::registry::Snapshot;

/// Counter: nanoseconds spent inside each named phase.
pub const PHASE_NS: &str = "amem_phase_ns_total";
/// Counter: times each named phase was entered.
pub const PHASE_CALLS: &str = "amem_phase_calls_total";

/// RAII guard from [`phase`]; records on drop.
#[must_use = "a phase guard records on drop; binding it to _ ends the phase immediately"]
pub struct PhaseGuard {
    active: Option<(String, Instant)>,
}

impl PhaseGuard {
    /// A guard that records nothing (the disabled-gate fast path).
    pub fn noop() -> Self {
        Self { active: None }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.active.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let reg = crate::global();
            reg.counter(PHASE_NS, &[("phase", &name)]).add(ns);
            reg.counter(PHASE_CALLS, &[("phase", &name)]).inc();
        }
    }
}

/// Open a named phase; it closes (and records into the global registry)
/// when the returned guard drops. Free when the gate is off.
pub fn phase(name: &str) -> PhaseGuard {
    if !crate::enabled() {
        return PhaseGuard::noop();
    }
    PhaseGuard {
        active: Some((name.to_string(), Instant::now())),
    }
}

/// One row of a phase-attribution report.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseCost {
    pub name: String,
    pub calls: u64,
    pub seconds: f64,
}

impl Snapshot {
    /// Join [`PHASE_NS`] and [`PHASE_CALLS`] by phase name, most expensive
    /// first.
    pub fn phase_report(&self) -> Vec<PhaseCost> {
        let mut out: Vec<PhaseCost> = self
            .series
            .iter()
            .filter(|s| s.name == PHASE_NS)
            .filter_map(|s| {
                let phase = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "phase")
                    .map(|(_, v)| v.clone())?;
                let ns = s.counter?;
                let calls = self
                    .counter(
                        PHASE_CALLS,
                        &s.labels
                            .iter()
                            .map(|(k, v)| (k.as_str(), v.as_str()))
                            .collect::<Vec<_>>(),
                    )
                    .unwrap_or(0);
                Some(PhaseCost {
                    name: phase,
                    calls,
                    seconds: ns as f64 / 1e9,
                })
            })
            .collect();
        out.sort_by(|a, b| {
            b.seconds
                .partial_cmp(&a.seconds)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn phase_report_joins_time_and_calls() {
        // Build the snapshot shape by hand against a local registry so the
        // test neither toggles the global gate nor races other tests.
        let r = Registry::new();
        r.counter(PHASE_NS, &[("phase", "sim/engine")])
            .add(3_000_000_000);
        r.counter(PHASE_CALLS, &[("phase", "sim/engine")]).add(6);
        r.counter(PHASE_NS, &[("phase", "executor/cache_lookup")])
            .add(500_000_000);
        r.counter(PHASE_CALLS, &[("phase", "executor/cache_lookup")])
            .add(12);
        let report = r.snapshot().phase_report();
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].name, "sim/engine");
        assert_eq!(report[0].calls, 6);
        assert!((report[0].seconds - 3.0).abs() < 1e-12);
        assert_eq!(report[1].name, "executor/cache_lookup");
        assert!((report[1].seconds - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_guard_is_inert() {
        crate::set_enabled(false);
        let g = phase("never");
        drop(g);
        // The global registry may hold series from other tests; the inert
        // guard must simply not add a "never" phase.
        assert!(crate::snapshot()
            .phase_report()
            .iter()
            .all(|p| p.name != "never"));
    }
}
