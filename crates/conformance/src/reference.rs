//! The reference hierarchy: obviously-correct twins of the SoA models.
//!
//! Everything here is written the way one would explain the hardware on a
//! whiteboard: one struct per cache way, linear scans, no memos, no
//! bitmask tricks, no prefetch hints kept between calls. What it *does*
//! keep, deliberately and exactly, is the **replacement contract** of
//! [`amem_sim::cache::Cache`]: the same tick renormalization, the same
//! probation-bit stamp encoding, the same insertion-policy stamps, the
//! same RNG draw order (Random-victim draw before the BIP ε draw), the
//! same first-minimum tie-breaks, and the same CAT way-mask edge cases —
//! including the production quirk that a partial way mask wraps at way 32
//! for victim selection on any geometry, while free-way eligibility under
//! a partial mask cuts off at way 32 on ≤64-way sets. Matching quirks is
//! the point: the fuzzer asserts *event-for-event equality*, so the
//! reference must be a second implementation of the same specification,
//! not a different specification.
//!
//! The `stamp` encoding is shared with the SoA cache: real recency ticks
//! live below bit 31 and the probation bit (bit 31) marks BIP-probation
//! lines, so a single `stamp ^ PROB_BIT` min-scan picks victims in both
//! worlds.

use amem_sim::cache::{Eviction, InsertPolicy, Replacement};
use amem_sim::config::CacheConfig;
use amem_sim::model::{CacheModel, PrefetchModel, Substrate, TlbModel};
use amem_sim::prefetch::PrefetchRequests;
use amem_sim::rng::SplitMix64;
use amem_sim::tlb::TlbConfig;

const EMPTY: u64 = u64::MAX;
const PROB_BIT: u32 = 1 << 31;
const BIP_EPSILON_INV: u64 = 16;
/// Lines per 4 KiB page with 64-byte lines (prefetcher page granularity).
const LINES_PER_PAGE_SHIFT: u32 = 6;
/// Stride-detector table entries, matching the production prefetcher.
const PF_TABLE: usize = 16;

/// One cache way: everything the model tracks about a resident line.
#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    /// Recency stamp (LRU tick or MRU bit) with [`PROB_BIT`] on top.
    stamp: u32,
    dirty: bool,
    sharers: u32,
    present: u32,
}

impl Way {
    fn empty() -> Self {
        Self {
            tag: EMPTY,
            stamp: 0,
            dirty: false,
            sharers: 0,
            present: 0,
        }
    }
}

/// The reference set-associative cache: array-of-structs, scalar scans.
#[derive(Debug, Clone)]
pub struct RefCache {
    sets: u32,
    ways: u32,
    hash_sets: bool,
    replacement: Replacement,
    insert: InsertPolicy,
    entries: Vec<Way>,
    track_ownership: bool,
    tick: u32,
    rng: SplitMix64,
    filled: u64,
}

impl RefCache {
    pub fn new(cfg: &CacheConfig) -> Self {
        assert!(cfg.sets() > 0, "cache must have at least one set");
        assert!(cfg.ways > 0, "cache must have at least one way");
        Self::with_geometry(
            cfg.sets(),
            cfg.ways,
            cfg.replacement,
            cfg.insert,
            cfg.hash_sets,
        )
    }

    /// Build from raw geometry. Unlike the production cache this accepts
    /// `ways == 0` — a capacity-zero cache where every lookup misses and
    /// every fill is dropped — which the property tests use as the
    /// degenerate end of the associativity-monotonicity ladder.
    pub fn with_geometry(
        sets: u32,
        ways: u32,
        replacement: Replacement,
        insert: InsertPolicy,
        hash_sets: bool,
    ) -> Self {
        assert!(sets > 0, "cache must have at least one set");
        Self {
            sets,
            ways,
            hash_sets,
            replacement,
            insert,
            entries: vec![Way::empty(); sets as usize * ways as usize],
            track_ownership: true,
            tick: 1,
            // Same embedded generator and seed as the production cache:
            // Random replacement and the BIP ε draw must consume the
            // identical stream for event equality to hold.
            rng: SplitMix64::new(0x5EED_CAFE),
            filled: 0,
        }
    }

    pub fn without_ownership(mut self) -> Self {
        self.track_ownership = false;
        self
    }

    pub fn capacity_lines(&self) -> u64 {
        self.sets as u64 * self.ways as u64
    }

    fn set_of(&self, line: u64) -> usize {
        let line = if self.hash_sets {
            line ^ (line >> 11) ^ (line >> 23)
        } else {
            line
        };
        // Plain modulo everywhere: for power-of-two set counts this is
        // bit-identical to the production mask path.
        (line % self.sets as u64) as usize
    }

    fn base(&self, set: usize) -> usize {
        set * self.ways as usize
    }

    fn set(&self, line: u64) -> std::ops::Range<usize> {
        let b = self.base(self.set_of(line));
        b..b + self.ways as usize
    }

    fn bump_tick(&mut self) -> u32 {
        if self.tick == PROB_BIT - 1 {
            for w in self.entries.iter_mut() {
                w.stamp = (w.stamp & PROB_BIT) | ((w.stamp & !PROB_BIT) / 2);
            }
            self.tick = (PROB_BIT - 1) / 2;
        }
        self.tick += 1;
        self.tick
    }

    /// Index of a present line, or `None`. A plain two-level search — the
    /// production cache's one-entry memo is precisely the kind of state
    /// this implementation refuses to carry.
    fn find(&self, line: u64) -> Option<usize> {
        if self.ways == 0 {
            return None;
        }
        self.set(line).find(|&i| self.entries[i].tag == line)
    }

    fn touch_entry(&mut self, base: usize, w: usize) {
        match self.replacement {
            Replacement::Lru => {
                let t = self.bump_tick();
                self.entries[base + w].stamp = t;
            }
            Replacement::BitPlru => {
                self.entries[base + w].stamp = 1;
                let ways = self.ways as usize;
                let all_set = (0..ways).all(|i| self.entries[base + i].stamp & !PROB_BIT == 1);
                if all_set {
                    for i in 0..ways {
                        self.entries[base + i].stamp &= PROB_BIT;
                    }
                    self.entries[base + w].stamp = 1;
                }
            }
            Replacement::Random => {
                self.entries[base + w].stamp &= !PROB_BIT;
            }
        }
    }

    pub fn lookup(&mut self, line: u64, store: bool) -> bool {
        self.lookup_scanning(line, store, self.ways as usize)
    }

    /// `lookup` with an explicit scan width. The conformance sabotage
    /// check wraps this with `scan_ways = ways - 1` — the classic
    /// off-by-one way-scan bug — to prove the differential fuzzer catches
    /// and minimizes real defects. Production behaviour is
    /// `scan_ways == ways`.
    #[doc(hidden)]
    pub fn lookup_scanning(&mut self, line: u64, store: bool, scan_ways: usize) -> bool {
        if self.ways == 0 {
            return false;
        }
        let base = self.base(self.set_of(line));
        let hit =
            (0..scan_ways.min(self.ways as usize)).find(|&w| self.entries[base + w].tag == line);
        match hit {
            Some(w) => {
                self.touch_entry(base, w);
                if store {
                    self.entries[base + w].dirty = true;
                }
                true
            }
            None => false,
        }
    }

    pub fn fill(&mut self, line: u64, dirty: bool) -> Option<Eviction> {
        self.fill_masked(line, dirty, None, u32::MAX)
    }

    pub fn fill_masked(
        &mut self,
        line: u64,
        dirty: bool,
        insert_override: Option<InsertPolicy>,
        way_mask: u32,
    ) -> Option<Eviction> {
        if self.ways == 0 {
            return None;
        }
        let ways = self.ways as usize;
        let base = self.base(self.set_of(line));

        // Free-way eligibility under a partial CAT mask mirrors the
        // production code paths exactly: the ≤64-way movemask path
        // AND-masks the empty-way bitmap with the zero-extended u32 mask
        // (so ways 32..64 are never free-eligible), while the >64-way
        // scalar path tests the mask bit modulo 32 (so it wraps).
        let free_allowed = |w: usize| -> bool {
            if way_mask == u32::MAX {
                true
            } else if ways <= 64 {
                w < 32 && way_mask & (1u32 << w) != 0
            } else {
                way_mask & (1u32 << (w as u32 & 31)) != 0
            }
        };

        let mut hit = None;
        let mut free = None;
        for w in 0..ways {
            let tag = self.entries[base + w].tag;
            if tag == line {
                hit = Some(w);
                break;
            }
            if tag == EMPTY && free.is_none() && free_allowed(w) {
                free = Some(w);
            }
        }
        if let Some(w) = hit {
            // A fill of a present line degenerates to a recency touch.
            self.touch_entry(base, w);
            self.entries[base + w].dirty |= dirty;
            return None;
        }

        let (w, evicted) = match free {
            Some(w) => (w, None),
            None => {
                let w = self.pick_victim_masked(base, way_mask);
                let e = &self.entries[base + w];
                let ev = Eviction {
                    line: e.tag,
                    dirty: e.dirty,
                    present: if self.track_ownership { e.present } else { 0 },
                };
                (w, Some(ev))
            }
        };
        if evicted.is_none() {
            self.filled += 1;
        }
        self.entries[base + w].tag = line;
        self.entries[base + w].dirty = dirty;
        if self.track_ownership {
            self.entries[base + w].sharers = 0;
            self.entries[base + w].present = 0;
        }
        let mut policy = insert_override.unwrap_or(self.insert);
        // BIP ε-promotion. This draw must come AFTER any Random-victim
        // draw (both share the cache's RNG stream).
        if policy == InsertPolicy::Lru && self.rng.below(BIP_EPSILON_INV) == 0 {
            policy = InsertPolicy::Mru;
        }
        let mut st = self.insert_stamp(base, w, policy);
        if policy == InsertPolicy::Lru {
            st |= PROB_BIT;
        }
        self.entries[base + w].stamp = st;
        evicted
    }

    /// Recency stamp for a fresh insertion (the new tag is already in
    /// place at way `w`; mid-stack insertion scans the *other* ways).
    fn insert_stamp(&mut self, base: usize, w: usize, insert: InsertPolicy) -> u32 {
        match self.replacement {
            Replacement::Lru => {
                let t = self.bump_tick();
                match insert {
                    InsertPolicy::Mru | InsertPolicy::Lru => t,
                    InsertPolicy::Mid => {
                        let mut oldest = t;
                        for i in 0..self.ways as usize {
                            if i != w && self.entries[base + i].tag != EMPTY {
                                oldest = oldest.min(self.entries[base + i].stamp & !PROB_BIT);
                            }
                        }
                        oldest / 2 + t / 2
                    }
                }
            }
            Replacement::BitPlru => match insert {
                InsertPolicy::Mru | InsertPolicy::Mid => 1,
                InsertPolicy::Lru => 0,
            },
            Replacement::Random => 0,
        }
    }

    fn pick_victim_masked(&mut self, base: usize, way_mask: u32) -> usize {
        let ways = self.ways as usize;
        // Victim-side mask semantics (production contract): the allowed
        // test always wraps the way index at 32.
        let allowed = |w: usize| way_mask & (1u32 << (w as u32 & 31)) != 0;
        match self.replacement {
            Replacement::Lru => {
                // First strict minimum of `stamp ^ PROB_BIT`: oldest
                // probation line first, then plain LRU.
                let mut pick = None;
                for w in 0..ways {
                    if !allowed(w) {
                        continue;
                    }
                    let key = self.entries[base + w].stamp ^ PROB_BIT;
                    if pick.is_none_or(|(_, bk)| key < bk) {
                        pick = Some((w, key));
                    }
                }
                pick.expect("mask allows at least one way").0
            }
            Replacement::BitPlru => {
                for w in 0..ways {
                    if allowed(w) && self.entries[base + w].stamp & !PROB_BIT == 0 {
                        return w;
                    }
                }
                (0..ways).find(|&w| allowed(w)).unwrap_or(0)
            }
            Replacement::Random => loop {
                let w = self.rng.below(ways as u64) as usize;
                if allowed(w) {
                    return w;
                }
            },
        }
    }

    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let i = self.find(line)?;
        let d = self.entries[i].dirty;
        self.entries[i] = Way::empty();
        self.filled -= 1;
        Some(d)
    }

    pub fn mark_dirty(&mut self, line: u64) -> bool {
        match self.find(line) {
            Some(i) => {
                self.entries[i].dirty = true;
                true
            }
            None => false,
        }
    }

    pub fn contains(&self, line: u64) -> bool {
        self.find(line).is_some()
    }

    pub fn add_sharer(&mut self, line: u64, core: u32) {
        if let Some(i) = self.find(line) {
            self.entries[i].sharers |= 1 << core;
        }
    }

    pub fn sharers(&self, line: u64) -> u32 {
        self.find(line)
            .map(|i| self.entries[i].sharers)
            .unwrap_or(0)
    }

    pub fn set_exclusive(&mut self, line: u64, core: u32) {
        if let Some(i) = self.find(line) {
            self.entries[i].sharers = 1 << core;
        }
    }

    pub fn note_present(&mut self, line: u64, core: u32) {
        if let Some(i) = self.find(line) {
            self.entries[i].present |= 1 << core;
        }
    }

    pub fn occupancy(&self) -> u64 {
        self.filled
    }

    pub fn occupancy_in(&self, lo: u64, hi: u64) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.tag != EMPTY && e.tag >= lo && e.tag < hi)
            .count() as u64
    }
}

impl CacheModel for RefCache {
    fn build(cfg: &CacheConfig) -> Self {
        RefCache::new(cfg)
    }
    fn without_ownership(self) -> Self {
        RefCache::without_ownership(self)
    }
    fn lookup(&mut self, line: u64, store: bool) -> bool {
        RefCache::lookup(self, line, store)
    }
    fn fill(&mut self, line: u64, dirty: bool) -> Option<Eviction> {
        RefCache::fill(self, line, dirty)
    }
    fn fill_masked(
        &mut self,
        line: u64,
        dirty: bool,
        insert_override: Option<InsertPolicy>,
        way_mask: u32,
    ) -> Option<Eviction> {
        RefCache::fill_masked(self, line, dirty, insert_override, way_mask)
    }
    fn invalidate(&mut self, line: u64) -> Option<bool> {
        RefCache::invalidate(self, line)
    }
    fn mark_dirty(&mut self, line: u64) -> bool {
        RefCache::mark_dirty(self, line)
    }
    fn contains(&self, line: u64) -> bool {
        RefCache::contains(self, line)
    }
    fn add_sharer(&mut self, line: u64, core: u32) {
        RefCache::add_sharer(self, line, core)
    }
    fn sharers(&self, line: u64) -> u32 {
        RefCache::sharers(self, line)
    }
    fn set_exclusive(&mut self, line: u64, core: u32) {
        RefCache::set_exclusive(self, line, core)
    }
    fn note_present(&mut self, line: u64, core: u32) {
        RefCache::note_present(self, line, core)
    }
    fn occupancy(&self) -> u64 {
        RefCache::occupancy(self)
    }
    fn occupancy_in(&self, lo: u64, hi: u64) -> u64 {
        RefCache::occupancy_in(self, lo, hi)
    }
}

/// The reference TLB: fully associative, true LRU, a vector of
/// (page, last-use) pairs.
#[derive(Debug, Clone)]
pub struct RefTlb {
    cfg: TlbConfig,
    page_shift: u32,
    entries: Vec<(u64, u64)>,
    tick: u64,
}

impl RefTlb {
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.page_bytes.is_power_of_two());
        Self {
            cfg,
            page_shift: cfg.page_bytes.trailing_zeros(),
            entries: Vec::new(),
            tick: 0,
        }
    }

    pub fn access(&mut self, addr: u64) -> u32 {
        if !self.cfg.is_enabled() {
            return 0;
        }
        let page = addr >> self.page_shift;
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == page) {
            e.1 = self.tick;
            return 0;
        }
        if self.entries.len() < self.cfg.entries as usize {
            self.entries.push((page, self.tick));
        } else {
            // First strict-minimum stamp, matching the production
            // tie-break.
            let mut idx = 0;
            for (i, e) in self.entries.iter().enumerate().skip(1) {
                if e.1 < self.entries[idx].1 {
                    idx = i;
                }
            }
            self.entries[idx] = (page, self.tick);
        }
        self.cfg.walk_cycles
    }
}

impl TlbModel for RefTlb {
    fn build(cfg: TlbConfig) -> Self {
        RefTlb::new(cfg)
    }
    fn access(&mut self, addr: u64) -> u32 {
        RefTlb::access(self, addr)
    }
}

/// One stride-detector entry of the reference prefetcher.
#[derive(Debug, Clone, Copy)]
struct PfEntry {
    /// Page number (line >> 6); 0 doubles as "empty" exactly as in the
    /// production table (the allocator never hands out page 0).
    page: u64,
    last_line: u64,
    stride: i64,
    confidence: u8,
    lru: u32,
}

impl PfEntry {
    fn empty() -> Self {
        Self {
            page: 0,
            last_line: 0,
            stride: 0,
            confidence: 0,
            lru: 0,
        }
    }
}

/// The reference stride prefetcher: an array of whole entries.
#[derive(Debug, Clone)]
pub struct RefPrefetcher {
    table: [PfEntry; PF_TABLE],
    tick: u32,
    degree: u32,
    enabled: bool,
}

impl RefPrefetcher {
    pub fn new(enabled: bool, degree: u32) -> Self {
        assert!(degree <= 4, "PrefetchRequests holds at most 4");
        Self {
            table: [PfEntry::empty(); PF_TABLE],
            tick: 0,
            degree,
            enabled,
        }
    }

    pub fn observe(&mut self, line: u64) -> PrefetchRequests {
        let mut out = PrefetchRequests::default();
        if !self.enabled {
            return out;
        }
        self.tick = self.tick.wrapping_add(1);
        let page = line >> LINES_PER_PAGE_SHIFT;
        match self.table.iter().position(|e| e.page == page) {
            Some(i) => {
                // Recency first, then training — same order as production
                // (a zero stride still refreshes the entry's LRU stamp).
                self.table[i].lru = self.tick;
                let stride = line as i64 - self.table[i].last_line as i64;
                if stride == 0 {
                    return out;
                }
                if stride == self.table[i].stride {
                    self.table[i].confidence = self.table[i].confidence.saturating_add(1);
                } else {
                    self.table[i].stride = stride;
                    self.table[i].confidence = 0;
                }
                self.table[i].last_line = line;
                if self.table[i].confidence >= 1 {
                    for k in 1..=self.degree as i64 {
                        let target = line as i64 + stride * k;
                        if target < 0 {
                            break;
                        }
                        let target = target as u64;
                        if target >> LINES_PER_PAGE_SHIFT != page {
                            break;
                        }
                        out.lines[out.n] = target;
                        out.n += 1;
                    }
                }
            }
            None => {
                // First empty slot, else the first strict-minimum LRU
                // stamp among occupied entries.
                let victim = match self.table.iter().position(|e| e.page == 0) {
                    Some(e) => e,
                    None => {
                        let mut victim = 0;
                        let mut oldest = u32::MAX;
                        for (i, e) in self.table.iter().enumerate() {
                            if e.lru < oldest {
                                oldest = e.lru;
                                victim = i;
                            }
                        }
                        victim
                    }
                };
                self.table[victim] = PfEntry {
                    page,
                    last_line: line,
                    stride: 0,
                    confidence: 0,
                    lru: self.tick,
                };
            }
        }
        out
    }
}

impl PrefetchModel for RefPrefetcher {
    fn build(enabled: bool, degree: u32) -> Self {
        RefPrefetcher::new(enabled, degree)
    }
    fn observe(&mut self, line: u64) -> PrefetchRequests {
        RefPrefetcher::observe(self, line)
    }
}

/// The reference substrate: plug the naive models into the shared engine.
#[derive(Debug, Clone, Copy)]
pub struct RefSubstrate;

impl Substrate for RefSubstrate {
    type Cache = RefCache;
    type Tlb = RefTlb;
    type Pf = RefPrefetcher;
}

#[cfg(test)]
mod tests {
    use super::*;
    use amem_sim::cache::Cache;

    fn cfg(ways: u32, total_lines: u64, repl: Replacement, ins: InsertPolicy) -> CacheConfig {
        CacheConfig {
            size_bytes: total_lines * 64,
            line_bytes: 64,
            ways,
            latency: 1,
            replacement: repl,
            insert: ins,
            hash_sets: false,
        }
    }

    /// Drive the SoA cache and the reference through an identical random
    /// call sequence and compare every observable return value. This is a
    /// unit-level dry run of what the fuzzer does through the engine.
    fn lockstep(c: CacheConfig, seed: u64, calls: usize, footprint: u64) {
        let mut soa = Cache::new(&c);
        let mut r = RefCache::new(&c);
        let mut rng = amem_sim::rng::Xoshiro256::seed_from_u64(seed);
        for step in 0..calls {
            let line = 1 + rng.below(footprint);
            match rng.below(6) {
                0 | 1 => {
                    let store = rng.below(3) == 0;
                    assert_eq!(
                        soa.lookup(line, store),
                        r.lookup(line, store),
                        "lookup({line}) diverged at step {step}"
                    );
                }
                2 | 3 => {
                    let dirty = rng.below(4) == 0;
                    let hint = match rng.below(4) {
                        0 => Some(InsertPolicy::Lru),
                        1 => Some(InsertPolicy::Mid),
                        _ => None,
                    };
                    assert_eq!(
                        soa.fill_masked(line, dirty, hint, u32::MAX),
                        r.fill_masked(line, dirty, hint, u32::MAX),
                        "fill({line}) diverged at step {step}"
                    );
                }
                4 => {
                    assert_eq!(
                        soa.invalidate(line),
                        r.invalidate(line),
                        "invalidate({line}) diverged at step {step}"
                    );
                }
                _ => {
                    assert_eq!(soa.contains(line), r.contains(line), "step {step}");
                    assert_eq!(soa.mark_dirty(line), r.mark_dirty(line), "step {step}");
                }
            }
            assert_eq!(soa.occupancy(), r.occupancy(), "occupancy at step {step}");
        }
        assert_eq!(
            soa.occupancy_in(0, footprint + 1),
            r.occupancy_in(0, footprint + 1)
        );
    }

    #[test]
    fn lockstep_lru_mru_pow2() {
        lockstep(
            cfg(4, 64, Replacement::Lru, InsertPolicy::Mru),
            1,
            6000,
            200,
        );
    }

    #[test]
    fn lockstep_lru_bip_nonpow2_sets() {
        // 3 sets of 4 ways: the modulo path, with probation churn.
        lockstep(cfg(4, 12, Replacement::Lru, InsertPolicy::Lru), 2, 6000, 64);
    }

    #[test]
    fn lockstep_bitplru_mid() {
        lockstep(
            cfg(8, 64, Replacement::BitPlru, InsertPolicy::Mid),
            3,
            6000,
            160,
        );
    }

    #[test]
    fn lockstep_random_replacement_shares_rng_stream() {
        lockstep(
            cfg(4, 32, Replacement::Random, InsertPolicy::Mru),
            4,
            6000,
            96,
        );
    }

    #[test]
    fn lockstep_wide_fully_associative() {
        // 1 set × 96 ways: the >64-way scalar path on the SoA side.
        lockstep(
            cfg(96, 96, Replacement::Lru, InsertPolicy::Mru),
            5,
            4000,
            300,
        );
    }

    #[test]
    fn lockstep_hashed_sets() {
        let mut c = cfg(4, 256, Replacement::Lru, InsertPolicy::Mru);
        c.hash_sets = true;
        lockstep(c, 6, 6000, 4096);
    }

    #[test]
    fn lockstep_masked_fills() {
        // CAT partitions: compare fills restricted to way subsets.
        let c = cfg(8, 64, Replacement::Lru, InsertPolicy::Mru);
        let mut soa = Cache::new(&c);
        let mut r = RefCache::new(&c);
        let mut rng = amem_sim::rng::Xoshiro256::seed_from_u64(9);
        for step in 0..4000 {
            let line = 1 + rng.below(160);
            let mask = match rng.below(3) {
                0 => 0x0F,
                1 => 0xF0,
                _ => u32::MAX,
            };
            assert_eq!(
                soa.fill_masked(line, false, None, mask),
                r.fill_masked(line, false, None, mask),
                "masked fill({line}, {mask:#x}) diverged at step {step}"
            );
        }
    }

    #[test]
    fn zero_way_cache_never_hits() {
        let mut c = RefCache::with_geometry(4, 0, Replacement::Lru, InsertPolicy::Mru, false);
        for l in 0..64u64 {
            assert!(!c.lookup(l, false));
            assert!(c.fill(l, false).is_none());
            assert!(!c.contains(l));
        }
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn truncated_scan_misses_last_way() {
        // The sabotage hook: a (ways-1)-wide lookup scan must miss a line
        // that lives in the last way.
        let c = cfg(4, 4, Replacement::Lru, InsertPolicy::Mru);
        let mut r = RefCache::new(&c);
        for l in 0..4u64 {
            r.fill(l, false);
        }
        // Line 3 landed in way 3 (fills walk free ways in order).
        assert!(r.lookup(3, false));
        assert!(
            !r.lookup_scanning(3, false, 3),
            "truncated scan must miss way 3"
        );
    }

    #[test]
    fn ref_tlb_matches_production() {
        let cfg = TlbConfig::xeon_dtlb();
        let mut a = amem_sim::tlb::Tlb::new(cfg);
        let mut b = RefTlb::new(cfg);
        let mut rng = amem_sim::rng::Xoshiro256::seed_from_u64(11);
        for i in 0..20_000 {
            let addr = 0x4000_0000 + rng.below(200) * 4096 + rng.below(4096);
            assert_eq!(a.access(addr), b.access(addr), "tlb diverged at {i}");
        }
    }

    #[test]
    fn ref_prefetcher_matches_production() {
        let mut a = amem_sim::prefetch::Prefetcher::new(true, 4);
        let mut b = RefPrefetcher::new(true, 4);
        let mut rng = amem_sim::rng::Xoshiro256::seed_from_u64(13);
        let mut cursor = 1u64 << 20;
        for i in 0..20_000 {
            // Mix of runs (trains strides) and jumps (allocates entries).
            let line = if rng.below(4) == 0 {
                cursor = (1 << 20) + rng.below(1 << 16);
                cursor
            } else {
                let delta: i64 = [1, 1, 2, -1][rng.below(4) as usize];
                cursor = cursor.wrapping_add(delta as u64).max(1 << 19);
                cursor
            };
            let ra = a.observe(line);
            let rb = b.observe(line);
            assert_eq!(ra.n, rb.n, "prefetch count diverged at {i}");
            assert_eq!(
                ra.lines[..ra.n],
                rb.lines[..rb.n],
                "prefetch lines diverged at {i}"
            );
        }
    }
}
