//! Analytic cross-checks: the simulator against closed-form math.
//!
//! The differential fuzzer (see [`crate::fuzz`]) proves two
//! *implementations* agree; it cannot notice both being wrong in the
//! same way. This module anchors the simulator to something external:
//!
//! * **Eq. 4 oracles** — for an i.i.d. access stream drawn from a Table
//!   II distribution, the paper's model predicts the steady-state hit
//!   rate of a fully-associative cache as `EHR = C · Σ g(ℓ)²`, computed
//!   exactly from CDF differences (no simulation). We drive the
//!   *production* `Cache` with sampled accesses and demand the measured
//!   rate land within `model_bias + 4·CI95` of the closed form, where
//!   CI95 comes from [`robust_summary`] over independent seeded trials
//!   and `model_bias` is the documented gap between Eq. 4's
//!   independence approximation and a true-LRU cache: the unclamped
//!   per-line presence probability `C·g(ℓ)` over-counts hot lines, so
//!   Eq. 4 slightly over-predicts for concentrated distributions (see
//!   `amem_probes::ehr::expected_hit_rate_clamped` for the corrected
//!   extension; the paper keeps the simple form).
//! * **Orthogonality oracles** — the paper's §III-D basis-vector
//!   property: CSThr pressure must not move a bandwidth measurement,
//!   and moderate BWThr pressure must not move a storage measurement.
//!   Evaluated on full engine runs, so they hold (or fail) for the
//!   whole pipeline, not just the cache model.

use amem_core::trial::robust_summary;
use amem_interfere::{BwThread, BwThreadCfg, CsThread, CsThreadCfg, InterferenceSpec};
use amem_probes::dist::{table2, NamedDist};
use amem_probes::ehr::{expected_hit_rate, sum_sq_line_mass};
use amem_sim::cache::{Cache, InsertPolicy, Replacement};
use amem_sim::config::{CacheConfig, CoreId, MachineConfig};
use amem_sim::engine::{Job, RunLimit};
use amem_sim::machine::Machine;
use amem_sim::rng::Xoshiro256;

/// One Eq. 4 cross-check: closed form vs simulated, with the evidence
/// needed to judge (and report) the comparison.
#[derive(Debug, Clone)]
pub struct EhrOracle {
    pub name: String,
    /// Eq. 4: `C · Σ g(ℓ)²`.
    pub analytic: f64,
    /// Robust mean of the per-trial simulated hit rates.
    pub measured: f64,
    /// CI95 half-width over trials.
    pub ci95_half: f64,
    /// Documented model bias (LRU vs the independence approximation).
    pub model_bias: f64,
    /// `model_bias + 4 · ci95_half`.
    pub tolerance: f64,
    pub trials: usize,
}

impl EhrOracle {
    /// |measured − analytic| within tolerance?
    pub fn holds(&self) -> bool {
        (self.measured - self.analytic).abs() <= self.tolerance
    }

    pub fn describe(&self) -> String {
        format!(
            "{}: analytic {:.4} measured {:.4} (±{:.4} CI95, tol {:.4}) -> {}",
            self.name,
            self.analytic,
            self.measured,
            self.ci95_half,
            self.tolerance,
            if self.holds() { "ok" } else { "VIOLATED" }
        )
    }
}

const LINE_BYTES: u64 = 64;
const ELEM_BYTES: u64 = 8;

/// Simulate one trial: steady-state hit rate of a fully-associative
/// production cache under i.i.d. sampling from `dist`.
fn simulate_hit_rate(
    nd: &NamedDist,
    cache_lines: u64,
    buffer_lines: u64,
    accesses: u64,
    seed: u64,
) -> f64 {
    let cfg = CacheConfig {
        size_bytes: cache_lines * LINE_BYTES,
        line_bytes: LINE_BYTES as u32,
        ways: cache_lines as u32,
        latency: 1,
        replacement: Replacement::Lru,
        insert: InsertPolicy::Mru,
        hash_sets: false,
    };
    let mut cache = Cache::new(&cfg);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let elems = buffer_lines * LINE_BYTES / ELEM_BYTES;
    let warm = cache_lines * 8;
    let mut hits = 0u64;
    for i in 0..warm + accesses {
        let idx = nd.dist.sample_index(&mut rng, elems);
        let line = idx * ELEM_BYTES / LINE_BYTES;
        let hit = cache.lookup(line, false);
        if !hit {
            cache.fill(line, false);
        }
        if i >= warm && hit {
            hits += 1;
        }
    }
    hits as f64 / accesses as f64
}

/// Build one Eq. 4 oracle for a named distribution.
///
/// Geometry: a 512-line fully-associative cache over a 6× larger buffer
/// keeps every Table II family's analytic EHR comfortably inside (0, 1),
/// where Eq. 4's assumptions are honest.
pub fn ehr_oracle(nd: &NamedDist, model_bias: f64) -> EhrOracle {
    let cache_lines = 512u64;
    let buffer_lines = cache_lines * 6;
    let buffer_bytes = buffer_lines * LINE_BYTES;
    let ssq = sum_sq_line_mass(&nd.dist, buffer_bytes, ELEM_BYTES, LINE_BYTES);
    let analytic = expected_hit_rate(cache_lines, ssq);
    let trials = 6usize;
    let rates: Vec<f64> = (0..trials as u64)
        .map(|t| {
            simulate_hit_rate(
                nd,
                cache_lines,
                buffer_lines,
                16_384,
                0x000E_11A0 ^ (t.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
        })
        .collect();
    let s = robust_summary(&rates, 3.5).expect("finite hit rates");
    EhrOracle {
        name: nd.name.to_string(),
        analytic,
        measured: s.mean,
        ci95_half: s.ci95_half,
        model_bias,
        tolerance: model_bias + 4.0 * s.ci95_half,
        trials,
    }
}

fn named(name: &str) -> NamedDist {
    table2()
        .into_iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("unknown Table II row {name}"))
}

/// The four-family oracle pack the conformance suite asserts: one
/// representative per Table II distribution family, each with its
/// calibrated LRU-vs-Eq.4 bias allowance.
pub fn ehr_oracle_pack() -> Vec<EhrOracle> {
    vec![
        // Concentrated families lean harder on the unclamped presence
        // probability, so they get the widest bias allowance.
        ehr_oracle(&named("Norm_6"), 0.08),
        ehr_oracle(&named("Exp_6"), 0.08),
        ehr_oracle(&named("Tri_2"), 0.06),
        // Uniform satisfies the independence assumption almost exactly.
        ehr_oracle(&named("Uni"), 0.03),
    ]
}

/// One §III-D orthogonality check: a metric sampled across interference
/// levels, with the largest relative departure from its baseline.
#[derive(Debug, Clone)]
pub struct OrthoCheck {
    pub name: String,
    /// Metric at interference level 0.
    pub baseline: f64,
    /// (level, metric) for each tested level.
    pub levels: Vec<(usize, f64)>,
    /// max |metric/baseline − 1| over the levels.
    pub max_rel_shift: f64,
    pub tolerance: f64,
}

impl OrthoCheck {
    pub fn holds(&self) -> bool {
        self.max_rel_shift <= self.tolerance
    }

    pub fn describe(&self) -> String {
        format!(
            "{}: baseline {:.4}, max shift {:.1}% (tol {:.0}%) -> {}",
            self.name,
            self.baseline,
            self.max_rel_shift * 100.0,
            self.tolerance * 100.0,
            if self.holds() { "ok" } else { "VIOLATED" }
        )
    }
}

fn ortho_machine() -> MachineConfig {
    MachineConfig::xeon20mb().scaled(0.0625)
}

/// Measured bandwidth (GB/s) of a finite BWThr run against `k` CSThrs.
fn bw_metric(k: usize) -> f64 {
    let cfg = ortho_machine();
    let mut m = Machine::new(cfg.clone());
    let t = BwThread::new(
        &mut m,
        &BwThreadCfg {
            iterations: Some(3_000),
            ..BwThreadCfg::for_machine(&cfg)
        },
    );
    let mut jobs = vec![Job::primary(Box::new(t), CoreId::new(0, 0))];
    if k > 0 {
        let free: Vec<CoreId> = (1..=k as u32).map(|c| CoreId::new(0, c)).collect();
        jobs.extend(InterferenceSpec::storage(k).build_jobs(&mut m, &free));
    }
    let r = m.run(jobs, RunLimit::default());
    r.jobs[0]
        .counters
        .bandwidth_gbs(cfg.l3.line_bytes, cfg.freq_ghz)
}

/// Measured storage cost (ns/round) of a finite CSThr run against `k`
/// BWThrs.
fn cs_metric(k: usize) -> f64 {
    let cfg = ortho_machine();
    let rounds = 200_000u64;
    let mut m = Machine::new(cfg.clone());
    let t = CsThread::new(
        &mut m,
        &CsThreadCfg {
            rounds: Some(rounds),
            ..CsThreadCfg::for_machine(&cfg)
        },
    );
    let mut jobs = vec![Job::primary(Box::new(t), CoreId::new(0, 0))];
    if k > 0 {
        let free: Vec<CoreId> = (1..=k as u32).map(|c| CoreId::new(0, c)).collect();
        jobs.extend(InterferenceSpec::bandwidth(k).build_jobs(&mut m, &free));
    }
    let r = m.run(jobs, RunLimit::default());
    cfg.seconds(r.jobs[0].counters.cycles) * 1e9 / rounds as f64
}

fn ortho_check(
    name: &str,
    metric: impl Fn(usize) -> f64,
    levels: &[usize],
    tolerance: f64,
) -> OrthoCheck {
    let baseline = metric(0);
    let levels: Vec<(usize, f64)> = levels.iter().map(|&k| (k, metric(k))).collect();
    let max_rel_shift = levels
        .iter()
        .map(|&(_, v)| (v / baseline - 1.0).abs())
        .fold(0.0, f64::max);
    OrthoCheck {
        name: name.to_string(),
        baseline,
        levels,
        max_rel_shift,
        tolerance,
    }
}

/// Both directions of the §III-D orthogonality claim.
///
/// BWThr-vs-CSThr is asserted up to 5 thrashers (the paper's Fig. 7 is
/// flat across its whole range). CSThr-vs-BWThr is only asserted up to 2
/// (Fig. 8 shows 3+ BWThrs saturating the memory bus *does* slow CSThr;
/// that regime is covered by `tests/orthogonality.rs`, not claimed here).
pub fn orthogonality_pack() -> Vec<OrthoCheck> {
    vec![
        ortho_check("bandwidth-invariant-to-CSThr", bw_metric, &[2, 5], 0.10),
        ortho_check("storage-invariant-to-few-BWThr", cs_metric, &[1, 2], 0.15),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_oracle_is_tight() {
        let o = ehr_oracle(&named("Uni"), 0.03);
        // Uniform: analytic EHR is exactly C / buffer_lines.
        assert!((o.analytic - 512.0 / 3072.0).abs() < 1e-3, "{}", o.analytic);
        assert!(o.holds(), "{}", o.describe());
    }

    #[test]
    fn oracle_pack_holds() {
        for o in ehr_oracle_pack() {
            assert!(o.holds(), "{}", o.describe());
            assert!(
                o.analytic > 0.05 && o.analytic < 0.95,
                "{}: analytic EHR must sit inside (0,1) for the check to mean anything",
                o.name
            );
        }
    }

    #[test]
    fn oracle_is_deterministic() {
        let a = ehr_oracle(&named("Exp_6"), 0.08);
        let b = ehr_oracle(&named("Exp_6"), 0.08);
        assert_eq!(a.measured.to_bits(), b.measured.to_bits());
    }
}
