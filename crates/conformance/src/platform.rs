//! The reference hierarchy behind the ordinary [`Platform`] trait.
//!
//! Wrapping [`SimPlatform`] rather than reimplementing it means the whole
//! measurement pipeline — rank mapping, feasibility checks, interference
//! placement, post-`Mark` aggregation — is shared code; only the
//! substrate differs. A conformance cross-check of a full measurement is
//! then one platform swap away for any experiment driver.

use amem_core::error::AmemError;
use amem_core::platform::{Measurement, Platform, SimPlatform, Workload};
use amem_interfere::InterferenceMix;
use amem_sim::config::MachineConfig;
use amem_sim::engine::RunLimit;

use crate::reference::RefSubstrate;

/// Cache-key salt for reference measurements. Bump when the reference
/// models change behaviour (they should only when the production contract
/// does).
const REFERENCE_SALT: &str = "reference-v1";

/// A [`SimPlatform`] that executes every measurement through the
/// reference (AoS, scalar) hierarchy models instead of the SoA ones.
#[derive(Debug, Clone)]
pub struct ReferencePlatform {
    inner: SimPlatform,
}

impl ReferencePlatform {
    pub fn new(cfg: MachineConfig) -> Self {
        Self {
            inner: SimPlatform::new(cfg),
        }
    }

    /// Wrap an already-configured simulator platform (run limits,
    /// sampling and tracing settings carry over).
    pub fn from_sim(inner: SimPlatform) -> Self {
        Self { inner }
    }

    pub fn with_limit(mut self, limit: RunLimit) -> Self {
        self.inner = self.inner.with_limit(limit);
        self
    }
}

impl Platform for ReferencePlatform {
    fn cfg(&self) -> &MachineConfig {
        self.inner.cfg()
    }

    fn limit(&self) -> &RunLimit {
        self.inner.limit()
    }

    fn run(
        &self,
        workload: &dyn Workload,
        per_processor: usize,
        mix: InterferenceMix,
    ) -> Result<Measurement, AmemError> {
        self.inner
            .run_with_substrate::<RefSubstrate>(workload, per_processor, mix)
    }

    /// Reference measurements are deterministic (cacheable), but must
    /// never be served from — or written into — the production cache
    /// namespace: same request, different model.
    fn cache_salt(&self) -> Option<String> {
        Some(REFERENCE_SALT.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amem_core::platform::ProbeWorkload;
    use amem_probes::dist::AccessDist;
    use amem_probes::probe::ProbeCfg;

    #[test]
    fn reference_platform_measures_like_production() {
        // A small probe must produce the *identical* measurement through
        // both platforms — the platform-level statement of conformance.
        let cfg = MachineConfig::xeon20mb().scaled(0.03125);
        let probe = ProbeWorkload(ProbeCfg::for_machine(
            &cfg,
            AccessDist::Exponential { rate: 6.0 },
            2.0,
            1,
        ));
        let prod = SimPlatform::new(cfg.clone());
        let refp = ReferencePlatform::new(cfg);
        let a = prod.run(&probe, 1, InterferenceMix::storage(1)).unwrap();
        let b = refp.run(&probe, 1, InterferenceMix::storage(1)).unwrap();
        assert_eq!(a.report.wall_cycles, b.report.wall_cycles);
        assert_eq!(a.report.event_signature(), b.report.event_signature());
        assert_eq!(a.l3_miss_rate.to_bits(), b.l3_miss_rate.to_bits());
        assert_eq!(a.app_bandwidth_gbs.to_bits(), b.app_bandwidth_gbs.to_bits());
    }

    #[test]
    fn reference_platform_is_salted_and_deterministic() {
        let p = ReferencePlatform::new(MachineConfig::xeon20mb().scaled(0.0625));
        assert!(p.deterministic());
        assert_eq!(p.cache_salt().as_deref(), Some("reference-v1"));
    }
}
