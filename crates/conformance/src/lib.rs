//! # amem-conformance — does the fast simulator still implement the model?
//!
//! The simulator's hot structures ([`amem_sim::cache::Cache`] and friends)
//! have accumulated layers of performance machinery: structure-of-arrays
//! layouts, movemask set scans, lookup→fill miss memos, probation flags
//! folded into recency stamps. Each was justified by an unchanged figure
//! CSV at the time — but CSVs rot, and behavioural equivalence deserves a
//! *living* proof. This crate supplies one, in three parts:
//!
//! 1. **A reference interpreter** ([`mod@reference`]): array-of-structs,
//!    scalar, memo-free re-implementations of the cache, TLB and stride
//!    prefetcher, written for obviousness rather than speed, and plugged
//!    into the production engine through [`amem_sim::model::Substrate`].
//!    Timing, scheduling, DRAM and coherence are shared engine code, so
//!    the two substrates must agree **event for event** — counters,
//!    writebacks, invalidations, even wall cycles.
//! 2. **A differential trace fuzzer** ([`fuzz`]): seeded, deterministic
//!    generation of adversarial access streams (set-conflict churn,
//!    probation storms, dirty writeback pressure, cross-core sharing)
//!    replayed through both substrates over a panel of cache geometries
//!    (power-of-two and not, up to >64-way fully-associative). Any
//!    divergence is shrunk to a minimal reproducer and written to
//!    `target/conformance/` for replay.
//! 3. **Analytic oracles** ([`oracle`]): the paper's Eq. 4
//!    (`EHR = C · Σᵢ f(i)²`) evaluated in closed form for the Table II
//!    distribution families and compared against the simulated hit rate
//!    with a CI95-derived tolerance, plus the orthogonality cross-checks
//!    (CSThr must not move measured bandwidth; BWThr must not move
//!    measured storage).
//! 4. **A curve lockstep check** ([`curves`]): the single-pass
//!    stack-distance engine behind [`amem_core::Executor::run_curve`]
//!    replayed against a naive per-point [`RefCache`] sweep (one
//!    fully-associative LRU simulation per capacity) on seeded
//!    adversarial traces — exact agreement at every capacity, no
//!    tolerance.
//!
//! [`platform::ReferencePlatform`] packages the reference substrate
//! behind the ordinary [`amem_core::platform::Platform`] trait so whole
//! measurements (workload + interference mix + aggregation) can be
//! cross-checked; its [`cache_salt`](amem_core::platform::Platform::cache_salt)
//! keeps its results from ever colliding with the production measurement
//! cache.

pub mod curves;
pub mod fuzz;
pub mod oracle;
pub mod platform;
pub mod qos;
pub mod reference;

pub use curves::{check_curve_case, gen_curve_case, reference_miss_rate, CurveDivergence};
pub use fuzz::{configs, fuzz_config, minimize, replay_file, write_reproducer, Divergence};
pub use oracle::{ehr_oracle, ehr_oracle_pack, orthogonality_pack, EhrOracle, OrthoCheck};
pub use platform::ReferencePlatform;
pub use qos::{
    check_qos_case, check_qos_sabotage_caught, gen_qos_case, qos_seed_sweep, QosDivergence,
};
pub use reference::{RefCache, RefPrefetcher, RefSubstrate, RefTlb};
