//! Lockstep conformance of the single-pass curve engine.
//!
//! The miss-rate-curve fast path ([`amem_sim::stackdist`]) claims that
//! one Bennett–Kruskal traversal reproduces, at every capacity at once,
//! what the reference cache would measure point by point. This module
//! holds it to that claim the same way [`crate::fuzz`] holds the SoA
//! cache to the reference cache: seeded deterministic traces, replayed
//! through both implementations, compared exactly.
//!
//! The per-point side is [`RefCache`] with a single set of `C` ways under
//! true-LRU replacement and MRU insertion — a fully-associative LRU
//! cache, the exact structure the Mattson inclusion argument is about.
//! For every capacity on the sweep, its measured-phase miss count must
//! equal the histogram's to within floating-point rounding; any gap is a
//! real defect in one of the two implementations, never tolerance slack.

use amem_sim::cache::{InsertPolicy, Replacement};
use amem_sim::rng::Xoshiro256;
use amem_sim::stackdist::{LineTrace, StackDistHistogram};

use crate::reference::RefCache;

/// A capacity point where the single-pass curve and the per-point
/// reference cache disagree.
#[derive(Debug, Clone)]
pub struct CurveDivergence {
    pub seed: u64,
    pub capacity_lines: u64,
    pub single_pass: f64,
    pub reference: f64,
}

impl CurveDivergence {
    pub fn describe(&self) -> String {
        format!(
            "seed {} capacity {} lines: single-pass {:.9} vs reference {:.9}",
            self.seed, self.capacity_lines, self.single_pass, self.reference
        )
    }
}

/// Measured-phase miss rate of the reference fully-associative LRU cache
/// at `capacity_lines`: warm accesses fill the stack uncounted, then
/// every post-mark access is a lookup (miss ⇒ fill), exactly the
/// protocol the probe measurement uses.
pub fn reference_miss_rate(trace: &LineTrace, capacity_lines: u32) -> f64 {
    let mut cache = RefCache::with_geometry(
        1,
        capacity_lines,
        Replacement::Lru,
        InsertPolicy::Mru,
        false,
    )
    .without_ownership();
    let mut misses = 0u64;
    let mut measured = 0u64;
    for (i, &line) in trace.lines.iter().enumerate() {
        let in_measure = i >= trace.mark;
        if in_measure {
            measured += 1;
        }
        if !cache.lookup(line, false) {
            if in_measure {
                misses += 1;
            }
            cache.fill(line, false);
        }
    }
    if measured == 0 {
        1.0
    } else {
        misses as f64 / measured as f64
    }
}

/// Line universe of a seeded case (kept small so the full capacity sweep
/// is cheap: the geometries of interest are the ones where the stack
/// actually churns).
fn universe(seed: u64) -> u64 {
    16 + (seed * 7) % 96
}

/// Generate a deterministic adversarial trace: a mix of uniform churn,
/// sequential sweeps longer than the universe (the LRU worst case) and a
/// hot set revisited often (the deep-reuse best case), with the
/// warm/measure mark placed at 30%.
pub fn gen_curve_case(seed: u64, accesses: usize) -> LineTrace {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xC0_FFEE);
    let u = universe(seed);
    let mut lines = Vec::with_capacity(accesses);
    while lines.len() < accesses {
        match rng.below(3) {
            0 => {
                // Uniform churn.
                for _ in 0..rng.below(40) + 5 {
                    lines.push(rng.below(u));
                }
            }
            1 => {
                // Sequential sweep, wrapping past the universe edge.
                let start = rng.below(u);
                for i in 0..rng.below(2 * u) + 2 {
                    lines.push((start + i) % u);
                }
            }
            _ => {
                // Hot-set hammering over a handful of lines.
                let base = rng.below(u);
                let width = rng.below(6) + 2;
                for _ in 0..rng.below(50) + 5 {
                    lines.push((base + rng.below(width)) % u);
                }
            }
        }
    }
    lines.truncate(accesses);
    let mark = accesses * 3 / 10;
    LineTrace { lines, mark }
}

/// Run one case: single-pass histogram vs the reference cache at every
/// capacity from 0 through past the footprint. Returns the first
/// divergent point.
pub fn check_curve_case(seed: u64, trace: &LineTrace) -> Result<(), CurveDivergence> {
    let hist = StackDistHistogram::compute(trace, 1.0);
    for cap in 0..=(hist.distinct_lines + 4) {
        let fast = hist.miss_rate_at_lines(cap);
        let slow = reference_miss_rate(trace, cap as u32);
        if (fast - slow).abs() > 1e-12 {
            return Err(CurveDivergence {
                seed,
                capacity_lines: cap,
                single_pass: fast,
                reference: slow,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pass_locksteps_the_reference_cache() {
        for seed in 0..25 {
            let t = gen_curve_case(seed, 800);
            check_curve_case(seed, &t).unwrap_or_else(|d| panic!("{}", d.describe()));
        }
    }

    #[test]
    fn a_planted_off_by_one_is_caught() {
        // Sanity that the check has teeth: evaluating the histogram one
        // capacity off must diverge somewhere on the sweep.
        let t = gen_curve_case(1, 800);
        let hist = StackDistHistogram::compute(&t, 1.0);
        let caught = (1..=hist.distinct_lines).any(|cap| {
            (hist.miss_rate_at_lines(cap - 1) - reference_miss_rate(&t, cap as u32)).abs() > 1e-12
        });
        assert!(caught, "shifted curve should not lockstep the reference");
    }

    #[test]
    fn empty_measurement_phase_agrees_pessimistically() {
        let t = LineTrace {
            lines: vec![1, 2, 3],
            mark: 3,
        };
        assert_eq!(reference_miss_rate(&t, 8), 1.0);
        assert_eq!(
            StackDistHistogram::compute(&t, 1.0).miss_rate_at_lines(8),
            1.0
        );
    }
}
