//! Differential trace fuzzing: production substrate vs reference, event
//! for event.
//!
//! Each fuzz case is a seeded, fully deterministic bundle of per-core op
//! lists (a [`TraceCase`]) generated to be adversarial for cache
//! metadata: same-set conflict storms deeper than the associativity,
//! streaming runs that train the prefetcher, dirty-store storms that
//! force writebacks, random churn over a shared region larger than the
//! L3 (cross-core sharing and back-invalidation), CAT way-masked lanes,
//! and BIP-probation lanes (`llc_insert_hint`). The case is executed
//! twice through the *same* engine — once per substrate — and the two
//! [`EventSignature`]s must be equal: every counter of every job, every
//! mark snapshot, every socket's demand/prefetch/writeback/DMA traffic,
//! and the wall-cycle count.
//!
//! A failing case can be [`minimize`]d (greedy lane- then chunk-removal,
//! ddmin style) and written to `target/conformance/` as a JSON
//! reproducer that [`replay_file`] re-executes verbatim.
//!
//! The [`sabotage`] module wires a deliberate off-by-one into the
//! reference way scan; the test suite uses it to prove the harness
//! *fails when it should* and that minimization shrinks the witness to a
//! handful of accesses.

// A `Divergence` deliberately carries the whole failing case plus both
// event signatures: it *is* the reproducer payload, and the Err path is
// the exceptional one by construction.
#![allow(clippy::result_large_err)]

use std::path::{Path, PathBuf};

use amem_sim::cache::InsertPolicy;
use amem_sim::config::{CacheConfig, CoreId, MachineConfig};
use amem_sim::engine::{EngineWith, EventSignature, Job, RunLimit, DEFAULT_RUN_AHEAD};
use amem_sim::machine::Machine;
use amem_sim::model::{SoaSubstrate, Substrate};
use amem_sim::rng::Xoshiro256;
use amem_sim::stream::{AccessStream, Op};
use amem_sim::tlb::TlbConfig;
use serde::{Deserialize, Serialize};

use crate::reference::RefSubstrate;

/// One named cache geometry the fuzzer sweeps.
#[derive(Debug, Clone)]
pub struct FuzzCfg {
    pub name: &'static str,
    pub machine: MachineConfig,
}

/// One core's slice of a fuzz case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lane {
    pub socket: u32,
    pub core: u32,
    /// Memory-level parallelism of this lane's stream.
    pub mlp: u8,
    /// Whether the lane fills the LLC with a BIP-probation hint
    /// (`llc_insert_hint() == Some(InsertPolicy::Lru)`), exercising the
    /// per-fill insertion override.
    pub probation_hint: bool,
    /// CAT allocation mask for this lane's L3 fills.
    pub l3_way_mask: u32,
    pub ops: Vec<Op>,
}

/// A self-contained, replayable fuzz case: machine geometry plus one op
/// list per core. Serialized verbatim as the reproducer format.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceCase {
    pub config: String,
    pub seed: u64,
    pub machine: MachineConfig,
    pub lanes: Vec<Lane>,
}

impl TraceCase {
    /// Total memory accesses (loads + stores) across all lanes — the
    /// size metric minimization drives down.
    pub fn total_accesses(&self) -> usize {
        self.lanes
            .iter()
            .flat_map(|l| l.ops.iter())
            .filter(|o| matches!(o, Op::Load(_) | Op::Store(_)))
            .count()
    }
}

/// A detected behavioural divergence between the two substrates.
#[derive(Debug, Clone)]
pub struct Divergence {
    pub case: TraceCase,
    /// Signature from the production (SoA) substrate.
    pub production: EventSignature,
    /// Signature from the substrate under test (normally the reference).
    pub reference: EventSignature,
}

impl Divergence {
    /// One-line description of the first differing field, for reports.
    pub fn describe(&self) -> String {
        let (p, r) = (&self.production, &self.reference);
        if p.wall_cycles != r.wall_cycles {
            return format!(
                "{}: wall_cycles {} vs {}",
                self.case.config, p.wall_cycles, r.wall_cycles
            );
        }
        for (i, (pj, rj)) in p.jobs.iter().zip(&r.jobs).enumerate() {
            if pj != rj {
                return format!(
                    "{}: job {i} ({}) counters differ",
                    self.case.config, pj.label
                );
            }
        }
        for (i, (ps, rs)) in p.sockets.iter().zip(&r.sockets).enumerate() {
            if ps != rs {
                return format!("{}: socket {i} traffic differs", self.case.config);
            }
        }
        format!("{}: signatures differ", self.case.config)
    }
}

/// Replay stream for one lane.
struct LaneStream {
    ops: std::vec::IntoIter<Op>,
    mlp: u8,
    hint: bool,
    label: String,
}

impl LaneStream {
    fn new(lane: &Lane) -> Self {
        Self {
            ops: lane.ops.clone().into_iter(),
            mlp: lane.mlp,
            hint: lane.probation_hint,
            label: format!("lane-s{}c{}", lane.socket, lane.core),
        }
    }
}

impl AccessStream for LaneStream {
    fn next_op(&mut self) -> Op {
        self.ops.next().unwrap_or(Op::Done)
    }
    fn mlp(&self) -> u8 {
        self.mlp
    }
    fn label(&self) -> &str {
        &self.label
    }
    fn llc_insert_hint(&self) -> Option<InsertPolicy> {
        self.hint.then_some(InsertPolicy::Lru)
    }
}

fn l3(
    sets: u64,
    ways: u32,
    repl: amem_sim::cache::Replacement,
    ins: InsertPolicy,
    hash: bool,
) -> CacheConfig {
    CacheConfig {
        size_bytes: sets * ways as u64 * 64,
        line_bytes: 64,
        ways,
        latency: 38,
        replacement: repl,
        insert: ins,
        hash_sets: hash,
    }
}

fn tiny_machine(name: &str, l3: CacheConfig) -> MachineConfig {
    // 1/64-scale private caches keep eviction pressure high everywhere.
    let mut m = MachineConfig::xeon20mb().scaled(1.0 / 64.0);
    m.name = name.to_string();
    m.sockets = 1;
    m.cores_per_socket = 2;
    m.l3 = l3;
    m
}

/// The geometry panel the fuzzer sweeps: power-of-two and non-power-of-
/// two set counts, direct-mapped through >64-way fully-associative, all
/// three replacement policies, both insertion extremes, hashed and plain
/// indexing, TLB on and off, one and two sockets.
pub fn configs() -> Vec<FuzzCfg> {
    use amem_sim::cache::Replacement::{BitPlru, Lru, Random};
    let mut v = vec![
        FuzzCfg {
            name: "pow2-mru",
            machine: tiny_machine("pow2-mru", l3(64, 8, Lru, InsertPolicy::Mru, true)),
        },
        FuzzCfg {
            name: "nonpow2-bip",
            machine: tiny_machine("nonpow2-bip", l3(48, 8, Lru, InsertPolicy::Lru, false)),
        },
        FuzzCfg {
            name: "fullassoc-128way",
            machine: tiny_machine(
                "fullassoc-128way",
                l3(1, 128, Lru, InsertPolicy::Mru, false),
            ),
        },
        FuzzCfg {
            name: "bitplru-mid",
            machine: tiny_machine("bitplru-mid", l3(32, 16, BitPlru, InsertPolicy::Mid, true)),
        },
        FuzzCfg {
            name: "random-repl",
            machine: tiny_machine("random-repl", l3(32, 8, Random, InsertPolicy::Mru, false)),
        },
        FuzzCfg {
            name: "directmap-tlb",
            machine: {
                let mut m =
                    tiny_machine("directmap-tlb", l3(128, 1, Lru, InsertPolicy::Mru, false));
                m.tlb = TlbConfig::xeon_dtlb();
                m
            },
        },
        FuzzCfg {
            name: "two-socket",
            machine: {
                let mut m = tiny_machine("two-socket", l3(64, 8, Lru, InsertPolicy::Mru, true));
                m.sockets = 2;
                m
            },
        },
    ];
    // Names double as reproducer file stems; keep them unique.
    v.dedup_by(|a, b| a.name == b.name);
    v
}

/// Generate one lane's adversarial op list.
fn gen_lane(rng: &mut Xoshiro256, m: &MachineConfig, flat: usize, len: usize) -> Vec<Op> {
    let l3cfg = &m.l3;
    let set_stride = l3cfg.sets() as u64 * l3cfg.line_bytes as u64;
    let shared = 1u64 << 22;
    let shared_bytes = (l3cfg.size_bytes * 3).max(16 << 10);
    let private = (1u64 << 24) + (flat as u64) * (1u64 << 22);
    let mut ops = Vec::with_capacity(len + 64);
    let mark_at = len * 2 / 5;
    let mut marked = false;
    let mut cursor = private;
    while ops.len() < len {
        if !marked && ops.len() >= mark_at {
            ops.push(Op::Mark);
            marked = true;
        }
        match rng.below(12) {
            // Same-set conflict storm: ~3× associativity distinct lines
            // hammering one set (probation churn, victim-scan stress).
            0 | 1 => {
                let span = (l3cfg.ways as u64) * 3;
                for _ in 0..8 + rng.below(24) {
                    let addr = shared + rng.below(span) * set_stride;
                    if rng.below(4) == 0 {
                        ops.push(Op::Store(addr));
                    } else {
                        ops.push(Op::Load(addr));
                    }
                }
            }
            // Sequential read run: trains the stride prefetcher.
            2 | 3 => {
                for _ in 0..16 + rng.below(96) {
                    ops.push(Op::Load(cursor));
                    cursor += 64;
                }
            }
            // Streaming stores: dirty lines everywhere, writeback storms
            // on eviction.
            4 => {
                for _ in 0..16 + rng.below(64) {
                    ops.push(Op::Store(cursor));
                    cursor += 64;
                }
            }
            // Strided run (3 lines): prefetcher stride retraining and
            // page-boundary clipping.
            5 => {
                for _ in 0..8 + rng.below(40) {
                    ops.push(Op::Load(cursor));
                    cursor += 192;
                }
            }
            // Random churn over a shared region ~3× the L3: capacity
            // evictions, cross-core sharing, coherence invalidations.
            6..=8 => {
                for _ in 0..8 + rng.below(32) {
                    let addr = shared + rng.below(shared_bytes / 8) * 8;
                    if rng.below(3) == 0 {
                        ops.push(Op::Store(addr));
                    } else {
                        ops.push(Op::Load(addr));
                    }
                }
            }
            9 => ops.push(Op::Compute(1 + rng.below(40) as u32)),
            10 => ops.push(Op::RemoteXfer(64 + rng.below(2048) as u32)),
            // Dependent single loads at word granularity.
            _ => {
                let addr = private + (rng.below(1 << 13) * 8);
                ops.push(Op::Load(addr));
            }
        }
    }
    if !marked {
        ops.push(Op::Mark);
    }
    ops
}

/// Generate the full deterministic fuzz case for (config, seed).
pub fn gen_case(cfg: &FuzzCfg, seed: u64, ops_per_lane: usize) -> TraceCase {
    let m = &cfg.machine;
    let mut lanes = Vec::new();
    for s in 0..m.sockets {
        for c in 0..m.cores_per_socket {
            let flat = (s * m.cores_per_socket + c) as usize;
            let mut rng = Xoshiro256::seed_from_u64(seed ^ ((flat as u64 + 1) << 48) ^ 0xC0F0_0000);
            let mask = if rng.below(4) == 0 { 0x0F } else { u32::MAX };
            lanes.push(Lane {
                socket: s,
                core: c,
                mlp: 1 + rng.below(3) as u8,
                probation_hint: flat % 2 == 1,
                l3_way_mask: mask,
                ops: gen_lane(&mut rng, m, flat, ops_per_lane),
            });
        }
    }
    TraceCase {
        config: cfg.name.to_string(),
        seed,
        machine: m.clone(),
        lanes,
    }
}

fn case_jobs(case: &TraceCase) -> Vec<Job> {
    case.lanes
        .iter()
        .map(|l| {
            Job::primary(Box::new(LaneStream::new(l)), CoreId::new(l.socket, l.core))
                .with_l3_ways(l.l3_way_mask)
        })
        .collect()
}

/// Execute a case through one substrate and flatten it to its signature.
pub fn run_case<S: Substrate>(case: &TraceCase) -> EventSignature {
    let mut m = Machine::new(case.machine.clone());
    m.run_with::<S>(case_jobs(case), RunLimit::default())
        .event_signature()
}

/// Like [`run_case`], but pinning the engine's fast-lane burst budget
/// (instead of inheriting `AMEM_HORIZON`), so budget sweeps are free of
/// process-global env races.
pub fn run_case_at<S: Substrate>(case: &TraceCase, run_ahead: u32) -> EventSignature {
    EngineWith::<S>::new(&case.machine, case_jobs(case))
        .with_run_ahead(run_ahead)
        .run(&RunLimit::default())
        .event_signature()
}

/// Run a case through the production substrate and through `S`,
/// demanding event-for-event equality.
pub fn check_case_against<S: Substrate>(case: &TraceCase) -> Result<(), Divergence> {
    let production = run_case::<SoaSubstrate>(case);
    let reference = run_case::<S>(case);
    if production == reference {
        Ok(())
    } else {
        Err(Divergence {
            case: case.clone(),
            production,
            reference,
        })
    }
}

/// Production vs the honest reference.
pub fn check_case(case: &TraceCase) -> Result<(), Divergence> {
    check_case_against::<RefSubstrate>(case)
}

/// Geometry for the ping-pong lane: two sockets × two cores, a small
/// hashed L3 per socket — the maximum-coupling topology (cross-socket
/// sharing, per-socket back-invalidation, four barrier participants).
pub fn pingpong_config() -> FuzzCfg {
    let mut m = tiny_machine(
        "pingpong-2s",
        l3(
            64,
            8,
            amem_sim::cache::Replacement::Lru,
            InsertPolicy::Mru,
            true,
        ),
    );
    m.sockets = 2;
    FuzzCfg {
        name: "pingpong-2s",
        machine: m,
    }
}

/// Generate a shared-line ping-pong / barrier-heavy case: every lane
/// hammers the same handful of hot lines (loads and invalidating
/// stores), interleaved with short private runs and compute jitter, in
/// barrier-separated rounds. This is the trace family whose event order
/// is most sensitive to a scheduler that lets a core run past its
/// quantum horizon — the fast lane's one failure mode (DESIGN.md §14).
pub fn gen_pingpong_case(seed: u64, ops_per_lane: usize) -> TraceCase {
    let cfg = pingpong_config();
    let m = &cfg.machine;
    // A few lines in one L3 set plus a few spread out: coherence churn
    // both with and without same-set replacement pressure.
    let set_stride = m.l3.sets() as u64 * m.l3.line_bytes as u64;
    let hot: Vec<u64> = (0..4)
        .map(|i| (1u64 << 22) + i * set_stride)
        .chain((0..4).map(|i| (1u64 << 23) + i * 4096))
        .collect();
    let rounds = 6usize;
    let per_round = (ops_per_lane / rounds).max(8);
    let mut lanes = Vec::new();
    for s in 0..m.sockets {
        for c in 0..m.cores_per_socket {
            let flat = (s * m.cores_per_socket + c) as u64;
            let mut rng = Xoshiro256::seed_from_u64(seed ^ ((flat + 1) << 40) ^ 0x9190_9060);
            let private = (1u64 << 26) + flat * (1u64 << 22);
            let mut cursor = private;
            let mut ops = Vec::with_capacity(ops_per_lane + rounds * 2);
            for round in 0..rounds {
                let mut emitted = 0usize;
                while emitted < per_round {
                    match rng.below(8) {
                        // The ping-pong itself: hot-line loads with
                        // invalidating stores mixed in.
                        0..=4 => {
                            for _ in 0..2 + rng.below(6) {
                                let addr = hot[rng.below(hot.len() as u64) as usize];
                                if rng.below(3) == 0 {
                                    ops.push(Op::Store(addr));
                                } else {
                                    ops.push(Op::Load(addr));
                                }
                                emitted += 1;
                            }
                        }
                        // Short private run: keeps the fast lane busy
                        // and the prefetcher trained between exchanges.
                        5 | 6 => {
                            for _ in 0..4 + rng.below(12) {
                                ops.push(Op::Load(cursor));
                                cursor += 64;
                                emitted += 1;
                            }
                        }
                        // Compute jitter: desynchronizes arrival times
                        // so barrier release orders vary per seed.
                        _ => {
                            ops.push(Op::Compute(1 + rng.below(30) as u32));
                            emitted += 1;
                        }
                    }
                }
                if round % 2 == 0 {
                    ops.push(Op::Mark);
                }
                ops.push(Op::Barrier);
            }
            lanes.push(Lane {
                socket: s,
                core: c,
                mlp: 1 + rng.below(4) as u8,
                probation_hint: flat % 2 == 1,
                l3_way_mask: u32::MAX,
                ops,
            });
        }
    }
    TraceCase {
        config: cfg.name.to_string(),
        seed,
        machine: m.clone(),
        lanes,
    }
}

/// Full ping-pong check: the production/reference substrate differential
/// plus fast-lane budget invariance — per-op lockstep (budget 1), the
/// default budget, and a seed-varied budget must all yield one event
/// signature. A budget mismatch is reported with the lockstep run as
/// `reference`.
pub fn check_pingpong_case(case: &TraceCase) -> Result<(), Divergence> {
    check_case(case)?;
    let lockstep = run_case_at::<SoaSubstrate>(case, 1);
    for budget in [DEFAULT_RUN_AHEAD, 2 + (case.seed % 97) as u32] {
        let budgeted = run_case_at::<SoaSubstrate>(case, budget);
        if budgeted != lockstep {
            return Err(Divergence {
                case: case.clone(),
                production: budgeted,
                reference: lockstep,
            });
        }
    }
    Ok(())
}

/// Outcome of a seed sweep on one config.
#[derive(Debug)]
pub struct FuzzOutcome {
    pub config: String,
    pub seeds_run: u64,
    pub divergences: Vec<Divergence>,
}

/// Fuzz one config across a seed range. Deterministic: the same range
/// always replays the same cases.
pub fn fuzz_config(cfg: &FuzzCfg, seeds: std::ops::Range<u64>, ops_per_lane: usize) -> FuzzOutcome {
    let mut divergences = Vec::new();
    let n = seeds.end - seeds.start;
    for seed in seeds {
        let case = gen_case(cfg, seed, ops_per_lane);
        if let Err(d) = check_case(&case) {
            divergences.push(d);
        }
    }
    FuzzOutcome {
        config: cfg.name.to_string(),
        seeds_run: n,
        divergences,
    }
}

/// Shrink a failing case while `still_fails` holds: drop whole lanes,
/// then remove op chunks per lane at halving granularity (ddmin-style),
/// iterating to a fixpoint. Deterministic given a deterministic checker.
pub fn minimize(case: &TraceCase, still_fails: impl Fn(&TraceCase) -> bool) -> TraceCase {
    assert!(still_fails(case), "minimize requires a failing case");
    let mut cur = case.clone();
    loop {
        let mut progress = false;
        // Whole lanes first: the cheapest big win.
        let mut i = 0;
        while cur.lanes.len() > 1 && i < cur.lanes.len() {
            let mut t = cur.clone();
            t.lanes.remove(i);
            if still_fails(&t) {
                cur = t;
                progress = true;
            } else {
                i += 1;
            }
        }
        // Chunk removal inside each lane.
        for li in 0..cur.lanes.len() {
            let mut chunk = (cur.lanes[li].ops.len() / 2).max(1);
            loop {
                let mut start = 0;
                while start < cur.lanes[li].ops.len() {
                    let end = (start + chunk).min(cur.lanes[li].ops.len());
                    let mut t = cur.clone();
                    t.lanes[li].ops.drain(start..end);
                    if still_fails(&t) {
                        cur = t;
                        progress = true;
                    } else {
                        start += chunk;
                    }
                }
                if chunk == 1 {
                    break;
                }
                chunk /= 2;
            }
        }
        if !progress {
            return cur;
        }
    }
}

/// Default reproducer directory.
pub fn reproducer_dir() -> PathBuf {
    PathBuf::from("target/conformance")
}

/// Serialize a (usually minimized) case for later replay. Returns the
/// file path.
pub fn write_reproducer(case: &TraceCase, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}-seed{}.json", case.config, case.seed));
    let json = serde_json::to_string(case)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Load a reproducer file and re-check it against the honest reference.
pub fn replay_file(path: impl AsRef<Path>) -> std::io::Result<Result<(), Divergence>> {
    let json = std::fs::read_to_string(path)?;
    let case: TraceCase = serde_json::from_str(&json)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(check_case(&case))
}

/// A reference substrate with a deliberately broken cache, used to prove
/// the harness detects and minimizes real defects. Not part of the
/// conformance claim itself.
#[doc(hidden)]
pub mod sabotage {
    use amem_sim::cache::{Eviction, InsertPolicy};
    use amem_sim::config::CacheConfig;
    use amem_sim::model::{CacheModel, Substrate};

    use crate::reference::{RefCache, RefPrefetcher, RefTlb};

    /// [`RefCache`] with the classic way-scan off-by-one: lookups scan
    /// only `ways - 1` ways, so a line resident in the last way is
    /// reported as a miss (and its recency is never touched).
    pub struct OffByOneCache {
        inner: RefCache,
        scan_ways: usize,
    }

    impl CacheModel for OffByOneCache {
        fn build(cfg: &CacheConfig) -> Self {
            Self {
                inner: RefCache::new(cfg),
                scan_ways: cfg.ways.saturating_sub(1) as usize,
            }
        }
        fn without_ownership(self) -> Self {
            Self {
                inner: self.inner.without_ownership(),
                scan_ways: self.scan_ways,
            }
        }
        fn lookup(&mut self, line: u64, store: bool) -> bool {
            self.inner.lookup_scanning(line, store, self.scan_ways)
        }
        fn fill(&mut self, line: u64, dirty: bool) -> Option<Eviction> {
            self.inner.fill(line, dirty)
        }
        fn fill_masked(
            &mut self,
            line: u64,
            dirty: bool,
            insert_override: Option<InsertPolicy>,
            way_mask: u32,
        ) -> Option<Eviction> {
            self.inner
                .fill_masked(line, dirty, insert_override, way_mask)
        }
        fn invalidate(&mut self, line: u64) -> Option<bool> {
            self.inner.invalidate(line)
        }
        fn mark_dirty(&mut self, line: u64) -> bool {
            self.inner.mark_dirty(line)
        }
        fn contains(&self, line: u64) -> bool {
            self.inner.contains(line)
        }
        fn add_sharer(&mut self, line: u64, core: u32) {
            self.inner.add_sharer(line, core)
        }
        fn sharers(&self, line: u64) -> u32 {
            self.inner.sharers(line)
        }
        fn set_exclusive(&mut self, line: u64, core: u32) {
            self.inner.set_exclusive(line, core)
        }
        fn note_present(&mut self, line: u64, core: u32) {
            self.inner.note_present(line, core)
        }
        fn occupancy(&self) -> u64 {
            self.inner.occupancy()
        }
        fn occupancy_in(&self, lo: u64, hi: u64) -> u64 {
            self.inner.occupancy_in(lo, hi)
        }
    }

    /// The sabotaged substrate: broken cache, honest TLB and prefetcher.
    pub struct OffByOneSubstrate;

    impl Substrate for OffByOneSubstrate {
        type Cache = OffByOneCache;
        type Tlb = RefTlb;
        type Pf = RefPrefetcher;
    }

    /// Check a case against the sabotaged substrate (expected to fail
    /// for any trace that ever hits a last way).
    pub fn check_case_sabotaged(case: &super::TraceCase) -> Result<(), super::Divergence> {
        super::check_case_against::<OffByOneSubstrate>(case)
    }

    /// Planted scheduler bug: run the case through the production
    /// substrate with the engine's fast lane allowed one cycle past the
    /// quantum horizon (`EngineWith::with_horizon_leak`), and compare
    /// against the honest per-op lockstep run. A shared access leaking
    /// across the horizon shifts the coherence interleaving, so the
    /// ping-pong lane must flag it (on some seed within a small sweep —
    /// the leak only bites when a burst actually straddles a horizon).
    pub fn check_case_horizon_leaky(case: &super::TraceCase) -> Result<(), super::Divergence> {
        use amem_sim::engine::{EngineWith, RunLimit};
        use amem_sim::model::SoaSubstrate;
        let leaky = EngineWith::<SoaSubstrate>::new(&case.machine, super::case_jobs(case))
            .with_horizon_leak()
            .run(&RunLimit::default())
            .event_signature();
        let honest = super::run_case_at::<SoaSubstrate>(case, 1);
        if leaky == honest {
            Ok(())
        } else {
            Err(super::Divergence {
                case: case.clone(),
                production: leaky,
                reference: honest,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_config_agrees_on_a_seed_sweep() {
        for cfg in configs() {
            let out = fuzz_config(&cfg, 0..3, 1500);
            assert!(
                out.divergences.is_empty(),
                "{}: {}",
                cfg.name,
                out.divergences[0].describe()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = &configs()[0];
        let a = gen_case(cfg, 7, 800);
        let b = gen_case(cfg, 7, 800);
        assert_eq!(a.lanes.len(), b.lanes.len());
        for (la, lb) in a.lanes.iter().zip(&b.lanes) {
            assert_eq!(la.ops, lb.ops);
            assert_eq!(la.mlp, lb.mlp);
        }
        // And a different seed produces different work.
        let c = gen_case(cfg, 8, 800);
        assert!(a.lanes.iter().zip(&c.lanes).any(|(x, y)| x.ops != y.ops));
    }

    #[test]
    fn sabotage_is_caught_and_minimizes_small() {
        // The injected off-by-one must be detected on the very first
        // seed and shrink to a tiny witness.
        let cfg = &configs()[0];
        let case = gen_case(cfg, 0, 1500);
        let d = sabotage::check_case_sabotaged(&case).expect_err("off-by-one must diverge");
        assert_eq!(d.case.config, "pow2-mru");
        let min = minimize(&case, |c| sabotage::check_case_sabotaged(c).is_err());
        assert!(
            min.total_accesses() <= 50,
            "minimized witness too large: {} accesses",
            min.total_accesses()
        );
        // The minimized case still reproduces.
        assert!(sabotage::check_case_sabotaged(&min).is_err());
    }

    #[test]
    fn pingpong_lane_agrees_and_is_budget_invariant() {
        for seed in 0..3 {
            let case = gen_pingpong_case(seed, 1200);
            assert!(
                check_pingpong_case(&case).is_ok(),
                "pingpong seed {seed} diverged"
            );
        }
    }

    #[test]
    fn horizon_leak_is_caught_and_minimizes_small() {
        // The planted one-cycle horizon overrun only bites on seeds
        // where a fast burst straddles a quantum boundary mid-exchange;
        // it must be caught within a small deterministic sweep.
        let caught = (0..32u64).find_map(|seed| {
            let case = gen_pingpong_case(seed, 1200);
            sabotage::check_case_horizon_leaky(&case).err()
        });
        let d = caught.expect("horizon leak must diverge within 32 seeds");
        let min = minimize(&d.case, |c| sabotage::check_case_horizon_leaky(c).is_err());
        assert!(
            sabotage::check_case_horizon_leaky(&min).is_err(),
            "minimized witness must still reproduce"
        );
        assert!(
            min.total_accesses() <= d.case.total_accesses(),
            "minimization must not grow the witness"
        );
    }

    #[test]
    fn reproducers_round_trip() {
        let cfg = &configs()[1];
        let case = gen_case(cfg, 3, 400);
        let dir = std::env::temp_dir().join("amem-conformance-test");
        let path = write_reproducer(&case, &dir).unwrap();
        let replay = replay_file(&path).unwrap();
        assert!(replay.is_ok(), "honest replay must pass");
        std::fs::remove_file(path).ok();
    }
}
