//! Controller-determinism conformance lane: the QoS loop must be a
//! deterministic function of `(seed, mix, policy)`.
//!
//! A controller is exactly the kind of code that silently lies: a single
//! nondeterministic decision (an unstable sort in victim selection, an
//! uninitialized EWMA, an epoch boundary that drifts with float error)
//! corrupts every estimate downstream while every individual run still
//! *looks* plausible. The lane holds the loop to byte-level honesty:
//!
//! * **Determinism** — running one generated co-schedule twice with an
//!   identically-configured [`QosController`] must produce byte-identical
//!   canonical-JSON decision logs *and* equal engine
//!   [`EventSignature`]s.
//! * **Sabotage self-test** — the engine's planted epoch off-by-one
//!   ([`EngineWith::with_epoch_off_by_one`]) shifts every boundary one
//!   epoch late; the lane must catch the resulting decision-log drift,
//!   proving it *fails when it should* (the PR 5 / PR 8 pattern in
//!   [`crate::fuzz`]).
//!
//! Case generation is seeded and deterministic: victim kind, aggressor
//! count and kinds, and the policy target all derive from the seed. The
//! CI `qos-smoke` job sweeps 200 seeds (`AMEM_QOS_SEEDS`).

use amem_qos::scenario::App;
use amem_qos::{QosController, QosCtlCfg, QosPolicy, Scenario};
use amem_sim::config::CoreId;
use amem_sim::engine::{EngineWith, EventSignature};
use amem_sim::machine::Machine;
use amem_sim::model::SoaSubstrate;
use amem_sim::{MachineConfig, RunLimit};

/// One generated controller-determinism case.
pub struct QosCase {
    pub seed: u64,
    pub scenario: Scenario,
    pub policy: QosPolicy,
    pub cfg: QosCtlCfg,
}

/// A detected mismatch between two runs of the same case.
#[derive(Debug, Clone)]
pub struct QosDivergence {
    pub seed: u64,
    /// What differed: `"decision-log"` or `"event-signature"`.
    pub field: &'static str,
}

/// Deterministically generate the co-schedule and policy for `seed`:
/// a victim (DRAM-bound or cache-resident), one to three aggressors
/// (streaming or thrashing), and either estimation-only or an enforcing
/// target between 1.1 and 1.4.
pub fn gen_qos_case(seed: u64) -> QosCase {
    let m = MachineConfig::xeon20mb().scaled(0.0625);
    let c = |i: u32| CoreId::new(0, i);
    let victim = if seed.is_multiple_of(2) {
        App::dram_bound("victim", &m, c(0), 7 + seed)
    } else {
        App::resident("victim", &m, c(0), 7 + seed)
    };
    let mut apps = vec![victim];
    let hogs = 1 + (seed % 3) as u32;
    for i in 0..hogs {
        if (seed >> (i + 1)) & 1 == 0 {
            apps.push(App::stream(&format!("bw{i}"), &m, c(1 + i)));
        } else {
            apps.push(App::resident(
                &format!("cs{i}"),
                &m,
                c(1 + i),
                0x5EED + seed + i as u64,
            ));
        }
    }
    let policy = if seed.is_multiple_of(3) {
        QosPolicy::none()
    } else {
        QosPolicy::none().with_target("victim", 1.1 + 0.1 * (seed % 4) as f64)
    };
    let mut cfg = QosCtlCfg::for_machine(&m);
    // Short epochs so a 300k-cycle case still crosses several probe
    // rounds.
    cfg.epoch_cycles = 10_000;
    QosCase {
        seed,
        scenario: Scenario::new(m, apps, 300_000),
        policy,
        cfg,
    }
}

/// Run one case once, returning the canonical decision log and the
/// engine event signature.
fn run_once(case: &QosCase, off_by_one: bool) -> (String, EventSignature) {
    let mut machine = Machine::new(case.scenario.machine.clone());
    let jobs = case.scenario.jobs(&mut machine);
    let mut ctl = QosController::new(case.scenario.ctl_apps(), &case.policy, case.cfg.clone());
    let limit = RunLimit {
        max_cycles: Some(case.scenario.max_cycles),
        ..RunLimit::default()
    };
    let mut engine =
        EngineWith::<SoaSubstrate>::new(&case.scenario.machine, jobs).with_controller(&mut ctl);
    if off_by_one {
        engine = engine.with_epoch_off_by_one();
    }
    let sig = engine.run(&limit).event_signature();
    (ctl.decision_log_json(), sig)
}

/// Determinism check: two identical runs must agree byte-for-byte on the
/// decision log and exactly on the event signature.
pub fn check_qos_case(case: &QosCase) -> Result<(), QosDivergence> {
    let (log_a, sig_a) = run_once(case, false);
    let (log_b, sig_b) = run_once(case, false);
    if log_a != log_b {
        return Err(QosDivergence {
            seed: case.seed,
            field: "decision-log",
        });
    }
    if sig_a != sig_b {
        return Err(QosDivergence {
            seed: case.seed,
            field: "event-signature",
        });
    }
    Ok(())
}

/// Sabotage self-test: the same case run through the planted epoch
/// off-by-one must produce a *different* decision log (boundaries fire
/// one epoch late, so every `now` and every rate sample shifts). Returns
/// `Err` when the sabotage goes *undetected* — i.e. the lane is blind.
pub fn check_qos_sabotage_caught(case: &QosCase) -> Result<(), QosDivergence> {
    let (honest, _) = run_once(case, false);
    let (shifted, _) = run_once(case, true);
    if honest == shifted {
        Err(QosDivergence {
            seed: case.seed,
            field: "decision-log",
        })
    } else {
        Ok(())
    }
}

/// Sweep a seed range; returns every divergence found. Deterministic:
/// the same range always replays the same cases.
pub fn qos_seed_sweep(seeds: std::ops::Range<u64>) -> Vec<QosDivergence> {
    seeds
        .filter_map(|seed| check_qos_case(&gen_qos_case(seed)).err())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = gen_qos_case(5);
        let b = gen_qos_case(5);
        assert_eq!(a.scenario.apps.len(), b.scenario.apps.len());
        for (x, y) in a.scenario.apps.iter().zip(&b.scenario.apps) {
            assert_eq!(x.name, y.name);
        }
        // Different seeds vary the mix shape somewhere in a small range.
        assert!((0..6).any(|s| gen_qos_case(s).scenario.apps.len() != a.scenario.apps.len()));
    }

    #[test]
    fn controller_is_deterministic_over_a_seed_sweep() {
        let div = qos_seed_sweep(0..6);
        assert!(div.is_empty(), "divergences: {div:?}");
    }

    #[test]
    fn epoch_off_by_one_is_caught_on_every_seed() {
        for seed in 0..6 {
            let case = gen_qos_case(seed);
            assert!(
                check_qos_sabotage_caught(&case).is_ok(),
                "seed {seed}: epoch off-by-one went undetected"
            );
        }
    }
}
