//! Native interference threads: the deployable form of the paper's tool.
//!
//! These run on the *host* machine, hammering real memory, and are what a
//! practitioner would co-schedule next to a real application to measure
//! its resource use on hardware the simulator does not model. They follow
//! the paper's pseudo-code exactly (Figs. 2 and 3), using volatile
//! accesses so the compiler cannot elide the traffic.
//!
//! Without access to PMU counters (which requires elevated permissions),
//! bandwidth is estimated as `bytes_touched / elapsed`, valid for BWThr
//! because its accesses miss by construction. Pinning threads to cores is
//! left to the caller (e.g. `taskset`); the methodology only requires that
//! interference threads run on cores that share the target cache.
//!
//! Everything here is best-effort and host-dependent; the reproducible
//! experiments all use the simulator streams instead.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use amem_sim::rng::Xoshiro256;

use crate::bw::{BwThreadCfg, LARGE_PRIME};
use crate::cs::CsThreadCfg;

/// Result of one native interference thread after it is stopped.
#[derive(Debug, Clone, Copy)]
pub struct NativeStats {
    /// Completed passes of the main loop.
    pub rounds: u64,
    /// Bytes assumed transferred (one line per access for BWThr).
    pub bytes: u64,
    /// Wall time the thread ran.
    pub secs: f64,
}

impl NativeStats {
    /// Estimated bandwidth in GB/s.
    pub fn gbs(&self) -> f64 {
        if self.secs <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / self.secs / 1e9
    }
}

/// Handle over a set of running native interference threads.
pub struct NativeHandle {
    stop: Arc<AtomicBool>,
    joins: Vec<JoinHandle<NativeStats>>,
}

impl NativeHandle {
    /// Signal all threads to stop and collect their statistics.
    pub fn stop(self) -> Vec<NativeStats> {
        self.stop.store(true, Ordering::Relaxed);
        self.joins
            .into_iter()
            .map(|j| j.join().expect("interference thread panicked"))
            .collect()
    }

    /// Number of running threads.
    pub fn len(&self) -> usize {
        self.joins.len()
    }

    pub fn is_empty(&self) -> bool {
        self.joins.is_empty()
    }
}

/// Spawn `n` native BWThr threads (paper Fig. 2).
pub fn spawn_bw(n: usize, cfg: &BwThreadCfg) -> NativeHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let joins = (0..n)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let cfg = *cfg;
            std::thread::spawn(move || run_bw(&cfg, &stop))
        })
        .collect();
    NativeHandle { stop, joins }
}

/// Spawn `n` native CSThr threads (paper Fig. 3).
pub fn spawn_cs(n: usize, cfg: &CsThreadCfg) -> NativeHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let joins = (0..n)
        .enumerate()
        .map(|(i, _)| {
            let stop = Arc::clone(&stop);
            let cfg = cfg.with_seed(cfg.seed.wrapping_add(i as u64));
            std::thread::spawn(move || run_cs(&cfg, &stop))
        })
        .collect();
    NativeHandle { stop, joins }
}

fn run_bw(cfg: &BwThreadCfg, stop: &AtomicBool) -> NativeStats {
    let elems = (cfg.buffer_bytes / 8).max(1) as usize;
    let mut bufs: Vec<Vec<u64>> = (0..cfg.n_buffers).map(|_| vec![0u64; elems]).collect();
    let start = Instant::now();
    let mut rounds = 0u64;
    let mut i = 0u64;
    loop {
        // One pass of the paper's `for (i...)` body: touch every buffer at
        // the prime-strided index.
        let idx = ((LARGE_PRIME.wrapping_mul(i)) % elems as u64) as usize;
        for buf in bufs.iter_mut() {
            // Volatile ++ so the optimizer cannot collapse the loop.
            let p = &mut buf[idx] as *mut u64;
            unsafe {
                let v = std::ptr::read_volatile(p);
                std::ptr::write_volatile(p, v.wrapping_add(1));
            }
        }
        i = i.wrapping_add(1);
        rounds += 1;
        if rounds.is_multiple_of(1024) && stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(limit) = cfg.iterations {
            if rounds >= limit {
                break;
            }
        }
    }
    NativeStats {
        rounds,
        bytes: rounds * cfg.n_buffers as u64 * 64,
        secs: start.elapsed().as_secs_f64(),
    }
}

fn run_cs(cfg: &CsThreadCfg, stop: &AtomicBool) -> NativeStats {
    let elems = (cfg.buffer_bytes / 4).max(1) as usize;
    let mut buf = vec![0u32; elems];
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    let start = Instant::now();
    let mut rounds = 0u64;
    loop {
        let idx = rng.below(elems as u64) as usize;
        let p = &mut buf[idx] as *mut u32;
        unsafe {
            let v = std::ptr::read_volatile(p);
            std::ptr::write_volatile(p, v.wrapping_add(1));
        }
        rounds += 1;
        if rounds.is_multiple_of(4096) && stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(limit) = cfg.rounds {
            if rounds >= limit {
                break;
            }
        }
    }
    NativeStats {
        rounds,
        bytes: rounds * 64,
        secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn native_bw_smoke() {
        // Tiny buffers so the test is cheap on any host.
        let cfg = BwThreadCfg {
            n_buffers: 4,
            buffer_bytes: 64 << 10,
            mlp: 4,
            iterations: None,
        };
        let h = spawn_bw(1, &cfg);
        std::thread::sleep(Duration::from_millis(30));
        let stats = h.stop();
        assert_eq!(stats.len(), 1);
        assert!(stats[0].rounds > 0);
        assert!(stats[0].gbs() > 0.0);
    }

    #[test]
    fn native_cs_smoke() {
        let cfg = CsThreadCfg {
            buffer_bytes: 256 << 10,
            ..CsThreadCfg::default()
        };
        let h = spawn_cs(2, &cfg);
        assert_eq!(h.len(), 2);
        std::thread::sleep(Duration::from_millis(30));
        let stats = h.stop();
        assert!(stats.iter().all(|s| s.rounds > 0));
    }

    #[test]
    fn finite_native_threads_stop_themselves() {
        let cfg = CsThreadCfg {
            buffer_bytes: 4 << 10,
            rounds: Some(10_000),
            ..CsThreadCfg::default()
        };
        let h = spawn_cs(1, &cfg);
        let stats = h.stop();
        assert!(stats[0].rounds <= 10_000 + 4096);
    }

    /// A real (host-dependent) measurement: one BWThr with a large
    /// footprint should move data at a DRAM-like rate. Ignored by default
    /// because it is hardware- and load-dependent.
    #[test]
    #[ignore = "host-dependent native bandwidth measurement"]
    fn native_bw_reaches_drams_scale() {
        let cfg = BwThreadCfg::default();
        let h = spawn_bw(1, &cfg);
        std::thread::sleep(Duration::from_millis(500));
        let stats = h.stop();
        assert!(
            stats[0].gbs() > 0.5,
            "native BWThr measured only {:.2} GB/s",
            stats[0].gbs()
        );
    }
}
