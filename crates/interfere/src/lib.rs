//! # amem-interfere — the paper's interference threads
//!
//! Implements the two interference workloads of *Casas & Bronevetsky,
//! IPDPS 2014*:
//!
//! * [`bw::BwThread`] — **BWThr** (paper Fig. 2): saturates the bandwidth
//!   between the shared L3 and main memory by walking many buffers with a
//!   large-prime stride, so that (nearly) every access misses the whole
//!   hierarchy. One BWThr consumes ≈2.8 GB/s on the Xeon20MB machine;
//!   seven saturate its ≈17 GB/s.
//! * [`cs::CsThread`] — **CSThr** (paper Fig. 3): occupies a fixed fraction
//!   of shared-cache storage by randomly re-touching a buffer of a chosen
//!   size, denying that capacity to co-running applications while using
//!   almost no memory bandwidth.
//!
//! Both exist in two forms:
//!
//! * **Simulator streams** implementing [`amem_sim::AccessStream`], used by
//!   every reproduction experiment (deterministic), and
//! * **Native threads** ([`native`]) that hammer real memory on the host —
//!   the deployable form of the paper's tool.
//!
//! [`spec::InterferenceSpec`] describes "k storage threads" / "k bandwidth
//! threads" abstractly and places them on free cores; [`calibrate`]
//! measures what each level of interference actually consumes (Eq. 1 for
//! bandwidth, resident-line occupancy for storage).

pub mod bw;
pub mod calibrate;
pub mod cs;
pub mod latency;
pub mod native;
pub mod spec;

pub use bw::{BwThread, BwThreadCfg};
pub use cs::{CsThread, CsThreadCfg};
pub use spec::{InterferenceKind, InterferenceMix, InterferenceSpec};
