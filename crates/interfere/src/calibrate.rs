//! Calibration of what each interference level actually consumes.
//!
//! §III of the paper: BWThr's bandwidth use is *directly measurable* from
//! hardware counters via Eq. 1 (`BW = line_bytes · misses / time`), while
//! CSThr's storage use "cannot be computed directly and must be computed
//! based on its effects" — the probe-based inversion lives in
//! `amem-core::capacity`. This module provides the direct measurements:
//! per-BWThr bandwidth, BWThr saturation curves, and instrumented CSThr
//! residency (a simulator-only cross-check the paper could not do on real
//! hardware).

use amem_sim::config::{CoreId, MachineConfig};
use amem_sim::engine::{Job, RunLimit};
use amem_sim::machine::Machine;

use crate::bw::{BwThread, BwThreadCfg};
use crate::cs::{CsThread, CsThreadCfg};

/// Outcome of running `k` BWThrs concurrently.
#[derive(Debug, Clone, Copy)]
pub struct BwCalibration {
    /// Mean Eq. 1 bandwidth per thread (read misses × line / time) — the
    /// quantity the paper reports (≈2.8 GB/s per thread on Xeon20MB).
    pub per_thread_gbs: f64,
    /// Sum of Eq. 1 bandwidths over the `k` threads.
    pub aggregate_gbs: f64,
    /// Total channel traffic (demand + prefetch + write-backs) over the
    /// run: this is what actually saturates — BWThr dirties every line it
    /// touches, so its true footprint on the channel is ≈2× its Eq. 1
    /// number. The paper's Eq. 1 has the same read-only blind spot, which
    /// is why its Fig. 8 sees CSThr impacted from 3 BWThrs even though
    /// "7 × 2.8 ≈ 100%" nominally.
    pub total_channel_gbs: f64,
}

/// Eq. 1 measurement of a single BWThr running alone: GB/s consumed.
pub fn bw_thread_gbs(cfg: &MachineConfig) -> f64 {
    bw_threads_gbs(cfg, 1).per_thread_gbs
}

/// Run `k` BWThrs concurrently (one per core of socket 0).
///
/// Reproduces the paper's §III-A numbers: ≈2.8 GB/s per thread on
/// Xeon20MB by Eq. 1, with saturation of the channel as threads are added.
pub fn bw_threads_gbs(cfg: &MachineConfig, k: usize) -> BwCalibration {
    assert!(k >= 1 && k <= cfg.cores_per_socket as usize);
    let mut m = Machine::new(cfg.clone());
    let tcfg = BwThreadCfg {
        // Finite so the threads are primaries and time themselves.
        iterations: Some(6_000),
        ..BwThreadCfg::for_machine(cfg)
    };
    let jobs: Vec<Job> = (0..k)
        .map(|i| {
            let t = BwThread::new(&mut m, &tcfg);
            Job::primary(Box::new(t), CoreId::new(0, i as u32))
        })
        .collect();
    let r = m.run(jobs, RunLimit::default());
    let line = cfg.l3.line_bytes;
    let per: Vec<f64> = r
        .jobs
        .iter()
        .map(|j| j.counters.bandwidth_gbs(line, cfg.freq_ghz))
        .collect();
    let mean = per.iter().sum::<f64>() / per.len() as f64;
    let total_bytes = r.sockets[0].dram.total_bytes(line);
    BwCalibration {
        per_thread_gbs: mean,
        aggregate_gbs: per.iter().sum(),
        total_channel_gbs: cfg.gbs(total_bytes, r.wall_cycles),
    }
}

/// Instrumented CSThr residency: run `k` CSThrs on socket 0 for a fixed
/// window and report, per thread, the fraction of its buffer resident in
/// the L3 at the end. The sum (× buffer size) is the storage the threads
/// jointly deny to an application.
pub fn cs_residency(cfg: &MachineConfig, k: usize) -> Vec<f64> {
    assert!(k >= 1 && k <= cfg.cores_per_socket as usize);
    let mut m = Machine::new(cfg.clone());
    let tcfg = CsThreadCfg::for_machine(cfg);
    let mut lim = RunLimit::cycles(3_000_000);
    let mut jobs = Vec::new();
    let mut sizes = Vec::new();
    for i in 0..k {
        let t = CsThread::new(&mut m, &tcfg.with_seed(1000 + i as u64));
        let range = t.line_range();
        sizes.push(range.1 - range.0);
        lim.watch_ranges.push(range);
        jobs.push(Job::background(Box::new(t), CoreId::new(0, i as u32)));
    }
    let r = m.run(jobs, lim);
    r.sockets[0]
        .watched_occupancy
        .iter()
        .zip(&sizes)
        .map(|(&res, &sz)| res as f64 / sz as f64)
        .collect()
}

/// Bandwidth left for applications when `k` BWThrs run, given the
/// machine's measured total (from STREAM): the subtraction the paper does
/// in §IV ("17 GB/s with no interference, 14.2 with 1 BWThr, 11.4 with
/// 2").
pub fn available_bw_gbs(total_gbs: f64, per_thread_gbs: f64, k: usize) -> f64 {
    (total_gbs - per_thread_gbs * k as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::xeon20mb().scaled(0.125)
    }

    #[test]
    fn one_bwthr_consumes_the_papers_share() {
        let c = cfg();
        let cal = bw_threads_gbs(&c, 1);
        assert!((cal.per_thread_gbs - cal.aggregate_gbs).abs() < 1e-9);
        // Paper §III-A: ≈2.8 GB/s per thread by Eq. 1.
        assert!(
            cal.per_thread_gbs > 2.2 && cal.per_thread_gbs < 3.4,
            "per-thread {:.2} GB/s",
            cal.per_thread_gbs
        );
    }

    #[test]
    fn bwthrs_saturate_the_channel() {
        let c = cfg();
        let t1 = bw_threads_gbs(&c, 1);
        let t4 = bw_threads_gbs(&c, 4);
        let t8 = bw_threads_gbs(&c, 8);
        assert!(
            t4.aggregate_gbs > t1.aggregate_gbs * 2.0,
            "4 threads should scale: {:.2} -> {:.2}",
            t1.aggregate_gbs,
            t4.aggregate_gbs
        );
        // With every line dirtied, total traffic ≈ 2× Eq. 1: the channel
        // must be saturated by 8 threads and never exceeded.
        assert!(
            t8.total_channel_gbs <= c.raw_dram_gbs() * 1.05,
            "total {:.2} exceeds channel {:.2}",
            t8.total_channel_gbs,
            c.raw_dram_gbs()
        );
        assert!(
            t8.total_channel_gbs > 0.85 * c.raw_dram_gbs(),
            "total {:.2} of {:.2} not saturated",
            t8.total_channel_gbs,
            c.raw_dram_gbs()
        );
        // Per-thread Eq. 1 bandwidth degrades under saturation.
        assert!(t8.per_thread_gbs < t1.per_thread_gbs * 0.6);
    }

    #[test]
    fn cs_threads_hold_their_buffers() {
        let c = cfg();
        let res = cs_residency(&c, 1);
        assert!(res[0] > 0.9, "residency {:.2}", res[0]);
        // Five threads want 100% of the L3; they cannot all fully fit,
        // but each should still hold a majority of its buffer.
        let res5 = cs_residency(&c, 5);
        assert_eq!(res5.len(), 5);
        let mean = res5.iter().sum::<f64>() / 5.0;
        assert!(mean > 0.5, "mean residency with 5 threads {mean:.2}");
    }

    #[test]
    fn available_bw_math() {
        assert!((available_bw_gbs(17.0, 2.8, 0) - 17.0).abs() < 1e-9);
        assert!((available_bw_gbs(17.0, 2.8, 2) - 11.4).abs() < 1e-9);
        assert_eq!(available_bw_gbs(17.0, 2.8, 7), 0.0, "clamped at zero");
    }
}
