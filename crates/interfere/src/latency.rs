//! Loaded-latency probe: the companion metric to Eq. 1's bandwidth.
//!
//! The paper observes that reduced bandwidth makes "cache misses take
//! longer to complete" (§IV). This probe measures that directly: a
//! dependent pointer chase over a DRAM-resident buffer reports the
//! *loaded* memory latency while interference runs — the classic
//! latency-under-load curve of memory-subsystem characterization. It is
//! itself nearly bandwidth-free (MLP = 1), so it observes contention
//! without meaningfully adding to it.

use amem_sim::config::{CoreId, MachineConfig};
use amem_sim::engine::{Job, RunLimit};
use amem_sim::machine::Machine;
use amem_sim::rng::Xoshiro256;
use amem_sim::stream::{AccessStream, Op};

use crate::spec::InterferenceSpec;

/// A serialized random chase over `bytes` of memory.
pub struct LatencyProbe {
    base: u64,
    next: Vec<u32>,
    pos: u32,
    remaining: u64,
    warm: u64,
    marked: bool,
    drain_pending: bool,
}

impl LatencyProbe {
    pub fn new(machine: &mut Machine, bytes: u64, accesses: u64, seed: u64) -> Self {
        let lines = (bytes / 64).max(2) as u32;
        let base = machine.alloc(bytes.max(128));
        let mut next: Vec<u32> = (0..lines).collect();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        // Sattolo single-cycle permutation.
        for i in (1..lines as u64).rev() {
            let j = rng.below(i) as usize;
            next.swap(i as usize, j);
        }
        Self {
            base,
            next,
            pos: 0,
            remaining: accesses,
            warm: (lines as u64).min(accesses),
            marked: false,
            drain_pending: false,
        }
    }
}

impl AccessStream for LatencyProbe {
    fn next_op(&mut self) -> Op {
        if self.drain_pending {
            self.drain_pending = false;
            return Op::Compute(0);
        }
        if self.warm > 0 {
            self.warm -= 1;
        } else if !self.marked {
            self.marked = true;
            return Op::Mark;
        } else if self.remaining == 0 {
            return Op::Done;
        } else {
            self.remaining -= 1;
        }
        self.pos = self.next[self.pos as usize];
        self.drain_pending = true;
        Op::Load(self.base + self.pos as u64 * 64)
    }

    fn mlp(&self) -> u8 {
        1
    }

    fn label(&self) -> &str {
        "latency-probe"
    }
}

/// Measure loaded memory latency (cycles per dependent miss) under the
/// given interference.
pub fn loaded_latency(cfg: &MachineConfig, spec: InterferenceSpec) -> f64 {
    let mut m = Machine::new(cfg.clone());
    // 4x the LLC: essentially every chase access misses to DRAM.
    let probe = LatencyProbe::new(&mut m, 4 * cfg.l3.size_bytes, 20_000, 0x1A7E);
    let mut jobs = vec![Job::primary(Box::new(probe), CoreId::new(0, 0))];
    let free: Vec<CoreId> = (1..cfg.cores_per_socket)
        .map(|c| CoreId::new(0, c))
        .collect();
    jobs.extend(spec.build_jobs(&mut m, &free));
    let r = m.run(jobs, RunLimit::default());
    let c = r.jobs[0].after_last_mark();
    c.cycles as f64 / c.loads.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MachineConfig {
        MachineConfig::xeon20mb().scaled(0.0625)
    }

    #[test]
    fn unloaded_latency_is_the_miss_path() {
        let c = cfg();
        let lat = loaded_latency(&c, InterferenceSpec::none());
        let expected = (c.l3.latency + c.dram_latency) as f64;
        assert!(
            lat > 0.9 * expected && lat < 1.4 * expected,
            "unloaded {lat:.0} vs expected ~{expected:.0}"
        );
    }

    #[test]
    fn latency_rises_under_bandwidth_load() {
        // The latency-under-load curve: each added BWThr queues more
        // traffic ahead of the probe's misses.
        let c = cfg();
        let l0 = loaded_latency(&c, InterferenceSpec::none());
        let l3 = loaded_latency(&c, InterferenceSpec::bandwidth(3));
        let l6 = loaded_latency(&c, InterferenceSpec::bandwidth(6));
        assert!(l3 > l0 * 1.05, "3 BWThrs: {l0:.0} -> {l3:.0}");
        assert!(l6 > l3, "6 BWThrs: {l3:.0} -> {l6:.0}");
    }

    #[test]
    fn storage_interference_barely_moves_latency() {
        // Orthogonality from the latency side: CSThrs occupy storage but
        // leave the channel (and hence loaded latency) almost alone.
        let c = cfg();
        let l0 = loaded_latency(&c, InterferenceSpec::none());
        let l4 = loaded_latency(&c, InterferenceSpec::storage(4));
        assert!(
            (l4 / l0 - 1.0).abs() < 0.15,
            "CSThrs moved latency {l0:.0} -> {l4:.0}"
        );
    }
}
