//! Abstract interference levels and their placement on free cores.
//!
//! The paper's experiments are parameterized by "k CSThrs" or "k BWThrs"
//! *per processor*: the interference threads run on the cores of each
//! socket that the application leaves free, so that they compete only for
//! the shared resources (L3 storage, memory channel) and not for the
//! application's own cores.

use amem_sim::config::CoreId;
use amem_sim::engine::Job;
use amem_sim::machine::Machine;
use serde::{Deserialize, Serialize};

use crate::bw::{BwThread, BwThreadCfg};
use crate::cs::{CsThread, CsThreadCfg};

/// Which resource the interference targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterferenceKind {
    /// CSThr: shared-cache storage capacity.
    Storage,
    /// BWThr: LLC↔DRAM bandwidth.
    Bandwidth,
}

/// "k interference threads of one kind on every occupied socket."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceSpec {
    pub kind: InterferenceKind,
    /// Threads per socket (the x-axis of the paper's figures).
    pub count: usize,
}

impl InterferenceSpec {
    /// No interference at all (the baseline run).
    pub fn none() -> Self {
        Self {
            kind: InterferenceKind::Storage,
            count: 0,
        }
    }

    /// `k` CSThrs per socket.
    pub fn storage(k: usize) -> Self {
        Self {
            kind: InterferenceKind::Storage,
            count: k,
        }
    }

    /// `k` BWThrs per socket.
    pub fn bandwidth(k: usize) -> Self {
        Self {
            kind: InterferenceKind::Bandwidth,
            count: k,
        }
    }

    /// Build background jobs on `free_cores`, taking the first `count`
    /// free cores *of each socket* present in the list.
    ///
    /// Panics if any socket in the list has fewer than `count` free cores
    /// — the same physical impossibility that makes some mapping ×
    /// interference combinations in the paper's Fig. 9 inexecutable.
    pub fn build_jobs(&self, machine: &mut Machine, free_cores: &[CoreId]) -> Vec<Job> {
        if self.count == 0 {
            return Vec::new();
        }
        let mut sockets: Vec<u32> = free_cores.iter().map(|c| c.socket).collect();
        sockets.sort_unstable();
        sockets.dedup();
        let mut jobs = Vec::new();
        let mut seed = 0x1F_EED0u64;
        for &s in &sockets {
            let on_socket: Vec<CoreId> = free_cores
                .iter()
                .copied()
                .filter(|c| c.socket == s)
                .collect();
            assert!(
                on_socket.len() >= self.count,
                "socket {s} has only {} free cores for {} interference threads",
                on_socket.len(),
                self.count
            );
            for &core in on_socket.iter().take(self.count) {
                seed = seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(core.core as u64);
                let stream: Box<dyn amem_sim::AccessStream> = match self.kind {
                    InterferenceKind::Storage => {
                        let cfg = CsThreadCfg::for_machine(machine.cfg()).with_seed(seed);
                        Box::new(CsThread::new(machine, &cfg))
                    }
                    InterferenceKind::Bandwidth => {
                        let cfg = BwThreadCfg::for_machine(machine.cfg());
                        Box::new(BwThread::new(machine, &cfg))
                    }
                };
                jobs.push(Job::background(stream, core));
            }
        }
        jobs
    }

    /// Human-readable level, e.g. `"3 CSThr"`.
    pub fn describe(&self) -> String {
        match self.kind {
            InterferenceKind::Storage => format!("{} CSThr", self.count),
            InterferenceKind::Bandwidth => format!("{} BWThr", self.count),
        }
    }
}

/// Simultaneous storage *and* bandwidth interference: `storage` CSThrs
/// plus `bandwidth` BWThrs per socket. The paper measures one resource at
/// a time and composes degradations; a mixed run tests that composition
/// directly (see `amem-bench --bin combined`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterferenceMix {
    pub storage: usize,
    pub bandwidth: usize,
}

impl InterferenceMix {
    pub fn new(storage: usize, bandwidth: usize) -> Self {
        Self { storage, bandwidth }
    }

    /// Total threads required per socket.
    pub fn threads(&self) -> usize {
        self.storage + self.bandwidth
    }

    /// Build background jobs: CSThrs take the first free cores of each
    /// socket, BWThrs the next ones. Panics if a socket lacks
    /// `threads()` free cores.
    pub fn build_jobs(&self, machine: &mut Machine, free_cores: &[CoreId]) -> Vec<Job> {
        if self.threads() == 0 {
            return Vec::new();
        }
        let mut sockets: Vec<u32> = free_cores.iter().map(|c| c.socket).collect();
        sockets.sort_unstable();
        sockets.dedup();
        let mut jobs = Vec::new();
        let mut seed = 0x4D31_5ED0u64;
        for &s in &sockets {
            let on_socket: Vec<CoreId> = free_cores
                .iter()
                .copied()
                .filter(|c| c.socket == s)
                .collect();
            assert!(
                on_socket.len() >= self.threads(),
                "socket {s} has only {} free cores for {} mixed threads",
                on_socket.len(),
                self.threads()
            );
            for (i, &core) in on_socket.iter().take(self.threads()).enumerate() {
                seed = seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(core.core as u64);
                let stream: Box<dyn amem_sim::AccessStream> = if i < self.storage {
                    let cfg = CsThreadCfg::for_machine(machine.cfg()).with_seed(seed);
                    Box::new(CsThread::new(machine, &cfg))
                } else {
                    let cfg = BwThreadCfg::for_machine(machine.cfg());
                    Box::new(BwThread::new(machine, &cfg))
                };
                jobs.push(Job::background(stream, core));
            }
        }
        jobs
    }

    pub fn describe(&self) -> String {
        format!("{} CSThr + {} BWThr", self.storage, self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amem_sim::prelude::*;

    #[test]
    fn zero_count_builds_nothing() {
        let mut m = Machine::new(MachineConfig::xeon20mb().scaled(0.125));
        let jobs = InterferenceSpec::none().build_jobs(&mut m, &[CoreId::new(0, 1)]);
        assert!(jobs.is_empty());
    }

    #[test]
    fn per_socket_placement() {
        let mut m = Machine::new(MachineConfig::xeon20mb().scaled(0.125));
        let free: Vec<CoreId> = (2..8)
            .map(|c| CoreId::new(0, c))
            .chain((2..8).map(|c| CoreId::new(1, c)))
            .collect();
        let jobs = InterferenceSpec::storage(3).build_jobs(&mut m, &free);
        assert_eq!(jobs.len(), 6, "3 per socket × 2 sockets");
        assert!(jobs.iter().all(|j| !j.primary));
        let s0 = jobs.iter().filter(|j| j.core.socket == 0).count();
        assert_eq!(s0, 3);
    }

    #[test]
    #[should_panic]
    fn too_few_free_cores_panics() {
        let mut m = Machine::new(MachineConfig::xeon20mb().scaled(0.125));
        let free = vec![CoreId::new(0, 6), CoreId::new(0, 7)];
        let _ = InterferenceSpec::bandwidth(3).build_jobs(&mut m, &free);
    }

    #[test]
    fn describe_strings() {
        assert_eq!(InterferenceSpec::storage(4).describe(), "4 CSThr");
        assert_eq!(InterferenceSpec::bandwidth(2).describe(), "2 BWThr");
        assert_eq!(InterferenceMix::new(3, 2).describe(), "3 CSThr + 2 BWThr");
    }

    #[test]
    fn mix_places_both_kinds() {
        let mut m = Machine::new(MachineConfig::xeon20mb().scaled(0.125));
        let free: Vec<CoreId> = (1..8).map(|c| CoreId::new(0, c)).collect();
        let jobs = InterferenceMix::new(2, 3).build_jobs(&mut m, &free);
        assert_eq!(jobs.len(), 5);
        let labels: Vec<&str> = jobs.iter().map(|j| j.stream.label()).collect();
        assert_eq!(labels.iter().filter(|l| **l == "CSThr").count(), 2);
        assert_eq!(labels.iter().filter(|l| **l == "BWThr").count(), 3);
    }

    #[test]
    fn empty_mix_builds_nothing() {
        let mut m = Machine::new(MachineConfig::xeon20mb().scaled(0.125));
        let jobs = InterferenceMix::new(0, 0).build_jobs(&mut m, &[CoreId::new(0, 1)]);
        assert!(jobs.is_empty());
    }
}
