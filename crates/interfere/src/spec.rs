//! Abstract interference levels and their placement on free cores.
//!
//! The paper's experiments are parameterized by "k CSThrs" or "k BWThrs"
//! *per processor*: the interference threads run on the cores of each
//! socket that the application leaves free, so that they compete only for
//! the shared resources (L3 storage, memory channel) and not for the
//! application's own cores.

use amem_sim::config::CoreId;
use amem_sim::engine::Job;
use amem_sim::machine::Machine;
use serde::{Deserialize, Serialize};

use crate::bw::{BwThread, BwThreadCfg};
use crate::cs::{CsThread, CsThreadCfg};

/// Which resource the interference targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterferenceKind {
    /// CSThr: shared-cache storage capacity.
    Storage,
    /// BWThr: LLC↔DRAM bandwidth.
    Bandwidth,
}

/// "k interference threads of one kind on every occupied socket."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceSpec {
    pub kind: InterferenceKind,
    /// Threads per socket (the x-axis of the paper's figures).
    pub count: usize,
}

impl InterferenceSpec {
    /// No interference at all (the baseline run).
    pub fn none() -> Self {
        Self {
            kind: InterferenceKind::Storage,
            count: 0,
        }
    }

    /// `k` CSThrs per socket.
    pub fn storage(k: usize) -> Self {
        Self {
            kind: InterferenceKind::Storage,
            count: k,
        }
    }

    /// `k` BWThrs per socket.
    pub fn bandwidth(k: usize) -> Self {
        Self {
            kind: InterferenceKind::Bandwidth,
            count: k,
        }
    }

    /// Build background jobs on `free_cores`, taking the first `count`
    /// free cores *of each socket* present in the list.
    ///
    /// Panics if any socket in the list has fewer than `count` free cores
    /// — the same physical impossibility that makes some mapping ×
    /// interference combinations in the paper's Fig. 9 inexecutable.
    pub fn build_jobs(&self, machine: &mut Machine, free_cores: &[CoreId]) -> Vec<Job> {
        if self.count == 0 {
            return Vec::new();
        }
        let mut sockets: Vec<u32> = free_cores.iter().map(|c| c.socket).collect();
        sockets.sort_unstable();
        sockets.dedup();
        let mut jobs = Vec::new();
        let mut seed = 0x1F_EED0u64;
        for &s in &sockets {
            let on_socket: Vec<CoreId> = free_cores
                .iter()
                .copied()
                .filter(|c| c.socket == s)
                .collect();
            assert!(
                on_socket.len() >= self.count,
                "socket {s} has only {} free cores for {} interference threads",
                on_socket.len(),
                self.count
            );
            for &core in on_socket.iter().take(self.count) {
                seed = seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(core.core as u64);
                let stream: Box<dyn amem_sim::AccessStream> = match self.kind {
                    InterferenceKind::Storage => {
                        let cfg = CsThreadCfg::for_machine(machine.cfg()).with_seed(seed);
                        Box::new(CsThread::new(machine, &cfg))
                    }
                    InterferenceKind::Bandwidth => {
                        let cfg = BwThreadCfg::for_machine(machine.cfg());
                        Box::new(BwThread::new(machine, &cfg))
                    }
                };
                jobs.push(Job::background(stream, core));
            }
        }
        jobs
    }

    /// Human-readable level, e.g. `"3 CSThr"`.
    pub fn describe(&self) -> String {
        match self.kind {
            InterferenceKind::Storage => format!("{} CSThr", self.count),
            InterferenceKind::Bandwidth => format!("{} BWThr", self.count),
        }
    }
}

/// Simultaneous storage *and* bandwidth interference: `storage` CSThrs
/// plus `bandwidth` BWThrs per socket. The paper measures one resource at
/// a time and composes degradations; a mixed run tests that composition
/// directly (see `amem-bench --bin combined`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterferenceMix {
    pub storage: usize,
    pub bandwidth: usize,
}

impl InterferenceMix {
    pub fn new(storage: usize, bandwidth: usize) -> Self {
        Self { storage, bandwidth }
    }

    /// No interference at all (the baseline run). All baselines are the
    /// same mix regardless of which resource a sweep targets — which is
    /// what lets the measurement cache share one baseline simulation
    /// between a storage sweep and a bandwidth sweep.
    pub fn none() -> Self {
        Self::new(0, 0)
    }

    /// `k` CSThrs per socket, no BWThrs.
    pub fn storage(k: usize) -> Self {
        Self::new(k, 0)
    }

    /// `k` BWThrs per socket, no CSThrs.
    pub fn bandwidth(k: usize) -> Self {
        Self::new(0, k)
    }

    /// `k` threads of one kind per socket (how sweeps build their levels).
    pub fn of_kind(kind: InterferenceKind, k: usize) -> Self {
        match kind {
            InterferenceKind::Storage => Self::storage(k),
            InterferenceKind::Bandwidth => Self::bandwidth(k),
        }
    }

    /// Whether this is the zero-interference baseline.
    pub fn is_baseline(&self) -> bool {
        self.threads() == 0
    }

    /// Total threads required per socket.
    pub fn threads(&self) -> usize {
        self.storage + self.bandwidth
    }

    /// Build background jobs: CSThrs take the first free cores of each
    /// socket, BWThrs the next ones. Panics if a socket lacks
    /// `threads()` free cores.
    pub fn build_jobs(&self, machine: &mut Machine, free_cores: &[CoreId]) -> Vec<Job> {
        if self.threads() == 0 {
            return Vec::new();
        }
        let mut sockets: Vec<u32> = free_cores.iter().map(|c| c.socket).collect();
        sockets.sort_unstable();
        sockets.dedup();
        let mut jobs = Vec::new();
        let mut seed = 0x4D31_5ED0u64;
        for &s in &sockets {
            let on_socket: Vec<CoreId> = free_cores
                .iter()
                .copied()
                .filter(|c| c.socket == s)
                .collect();
            assert!(
                on_socket.len() >= self.threads(),
                "socket {s} has only {} free cores for {} mixed threads",
                on_socket.len(),
                self.threads()
            );
            for (i, &core) in on_socket.iter().take(self.threads()).enumerate() {
                seed = seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(core.core as u64);
                let stream: Box<dyn amem_sim::AccessStream> = if i < self.storage {
                    let cfg = CsThreadCfg::for_machine(machine.cfg()).with_seed(seed);
                    Box::new(CsThread::new(machine, &cfg))
                } else {
                    let cfg = BwThreadCfg::for_machine(machine.cfg());
                    Box::new(BwThread::new(machine, &cfg))
                };
                jobs.push(Job::background(stream, core));
            }
        }
        jobs
    }

    /// Human-readable level: single-kind mixes render like an
    /// [`InterferenceSpec`] (`"3 CSThr"`), true mixes spell out both.
    pub fn describe(&self) -> String {
        match (self.storage, self.bandwidth) {
            (s, 0) => format!("{s} CSThr"),
            (0, b) => format!("{b} BWThr"),
            (s, b) => format!("{s} CSThr + {b} BWThr"),
        }
    }
}

/// An [`InterferenceSpec`] is just a one-kind mix.
impl From<InterferenceSpec> for InterferenceMix {
    fn from(spec: InterferenceSpec) -> Self {
        Self::of_kind(spec.kind, spec.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amem_sim::prelude::*;

    #[test]
    fn zero_count_builds_nothing() {
        let mut m = Machine::new(MachineConfig::xeon20mb().scaled(0.125));
        let jobs = InterferenceSpec::none().build_jobs(&mut m, &[CoreId::new(0, 1)]);
        assert!(jobs.is_empty());
    }

    #[test]
    fn per_socket_placement() {
        let mut m = Machine::new(MachineConfig::xeon20mb().scaled(0.125));
        let free: Vec<CoreId> = (2..8)
            .map(|c| CoreId::new(0, c))
            .chain((2..8).map(|c| CoreId::new(1, c)))
            .collect();
        let jobs = InterferenceSpec::storage(3).build_jobs(&mut m, &free);
        assert_eq!(jobs.len(), 6, "3 per socket × 2 sockets");
        assert!(jobs.iter().all(|j| !j.primary));
        let s0 = jobs.iter().filter(|j| j.core.socket == 0).count();
        assert_eq!(s0, 3);
    }

    #[test]
    #[should_panic]
    fn too_few_free_cores_panics() {
        let mut m = Machine::new(MachineConfig::xeon20mb().scaled(0.125));
        let free = vec![CoreId::new(0, 6), CoreId::new(0, 7)];
        let _ = InterferenceSpec::bandwidth(3).build_jobs(&mut m, &free);
    }

    #[test]
    fn describe_strings() {
        assert_eq!(InterferenceSpec::storage(4).describe(), "4 CSThr");
        assert_eq!(InterferenceSpec::bandwidth(2).describe(), "2 BWThr");
        assert_eq!(InterferenceMix::new(3, 2).describe(), "3 CSThr + 2 BWThr");
        assert_eq!(InterferenceMix::storage(3).describe(), "3 CSThr");
        assert_eq!(InterferenceMix::bandwidth(2).describe(), "2 BWThr");
    }

    #[test]
    fn spec_converts_to_single_kind_mix() {
        let m: InterferenceMix = InterferenceSpec::storage(4).into();
        assert_eq!(m, InterferenceMix::new(4, 0));
        let m: InterferenceMix = InterferenceSpec::bandwidth(2).into();
        assert_eq!(m, InterferenceMix::new(0, 2));
        let m: InterferenceMix = InterferenceSpec::none().into();
        assert!(m.is_baseline());
        assert_eq!(m, InterferenceMix::none());
    }

    #[test]
    fn baselines_of_both_kinds_are_identical() {
        // The cache relies on this: a storage sweep's k=0 and a bandwidth
        // sweep's k=0 must be the *same* measurement.
        assert_eq!(
            InterferenceMix::of_kind(InterferenceKind::Storage, 0),
            InterferenceMix::of_kind(InterferenceKind::Bandwidth, 0),
        );
        assert!(InterferenceMix::none().is_baseline());
        assert!(!InterferenceMix::storage(1).is_baseline());
    }

    #[test]
    fn mix_places_both_kinds() {
        let mut m = Machine::new(MachineConfig::xeon20mb().scaled(0.125));
        let free: Vec<CoreId> = (1..8).map(|c| CoreId::new(0, c)).collect();
        let jobs = InterferenceMix::new(2, 3).build_jobs(&mut m, &free);
        assert_eq!(jobs.len(), 5);
        let labels: Vec<&str> = jobs.iter().map(|j| j.stream.label()).collect();
        assert_eq!(labels.iter().filter(|l| **l == "CSThr").count(), 2);
        assert_eq!(labels.iter().filter(|l| **l == "BWThr").count(), 3);
    }

    #[test]
    fn empty_mix_builds_nothing() {
        let mut m = Machine::new(MachineConfig::xeon20mb().scaled(0.125));
        let jobs = InterferenceMix::new(0, 0).build_jobs(&mut m, &[CoreId::new(0, 1)]);
        assert!(jobs.is_empty());
    }
}
