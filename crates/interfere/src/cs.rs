//! CSThr: the cache-storage interference thread (paper Fig. 3).
//!
//! The paper's C skeleton:
//!
//! ```c
//! int* buf = malloc(sizeof(int) * bufSize);
//! while (1) buf[random_position]++;
//! ```
//!
//! Design points (§II-B):
//!
//! * The buffer is sized to the fraction of the shared cache to occupy
//!   (paper: 4 MB against a 20 MB L3 per thread).
//! * Accesses are **random**, so (a) almost every access misses the
//!   private L1/L2 (no spatial locality between consecutive touches) and
//!   hits the shared L3, constantly refreshing the buffer's recency there,
//!   and (b) the hardware prefetcher never trains, so no addresses outside
//!   the buffer are fetched.
//! * Because the thread spends all its time re-touching the buffer, a
//!   co-running application never gets to keep lines in that portion of
//!   the cache.
//!
//! The finite variant is used as the *measured* workload in the paper's
//! Fig. 8 (average time to perform a read + add + write).

use amem_sim::machine::Machine;
use amem_sim::rng::Xoshiro256;
use amem_sim::stream::{AccessStream, Op};
use serde::{Deserialize, Serialize};

/// Configuration of one CSThr.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CsThreadCfg {
    /// Buffer size in bytes (paper: 4 MB = 1/5 of the 20 MB L3).
    pub buffer_bytes: u64,
    /// In-flight miss budget. Random dependent-ish accesses overlap only
    /// a little in real hardware; 2 matches the L3-latency-bound pace.
    pub mlp: u8,
    /// If set, finish after this many `load+add+store` rounds.
    pub rounds: Option<u64>,
    /// RNG seed (each concurrent CSThr should get a different one).
    pub seed: u64,
}

impl Default for CsThreadCfg {
    fn default() -> Self {
        Self {
            buffer_bytes: 4 << 20,
            mlp: 2,
            rounds: None,
            seed: 0xC5_7412,
        }
    }
}

impl CsThreadCfg {
    /// The paper's 4 MB buffer, scaled to a shrunk machine: the buffer
    /// keeps its 1/5-of-L3 ratio.
    pub fn for_machine(cfg: &amem_sim::MachineConfig) -> Self {
        let d = Self::default();
        let full_l3 = 20u64 << 20;
        let ratio = cfg.l3.size_bytes as f64 / full_l3 as f64;
        Self {
            buffer_bytes: ((d.buffer_bytes as f64 * ratio) as u64).max(4096),
            ..d
        }
    }

    /// A distinct seed per thread index.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One cache-storage interference thread, as a simulator stream.
pub struct CsThread {
    base: u64,
    lines: u64,
    rng: Xoshiro256,
    store_pending: u64,
    has_pending: bool,
    rounds_left: Option<u64>,
    mlp: u8,
}

impl CsThread {
    pub fn new(machine: &mut Machine, cfg: &CsThreadCfg) -> Self {
        assert!(cfg.buffer_bytes >= 64);
        let base = machine.alloc(cfg.buffer_bytes);
        Self {
            base,
            lines: cfg.buffer_bytes / 64,
            rng: Xoshiro256::seed_from_u64(cfg.seed),
            store_pending: 0,
            has_pending: false,
            rounds_left: cfg.rounds,
            mlp: cfg.mlp,
        }
    }

    /// The buffer's line-number range (for L3 occupancy watching).
    pub fn line_range(&self) -> (u64, u64) {
        (self.base >> 6, (self.base >> 6) + self.lines)
    }
}

impl AccessStream for CsThread {
    fn next_op(&mut self) -> Op {
        if self.has_pending {
            self.has_pending = false;
            if let Some(left) = &mut self.rounds_left {
                *left -= 1;
            }
            return Op::Store(self.store_pending);
        }
        if self.rounds_left == Some(0) {
            return Op::Done;
        }
        // `buf[random_position]++`: random element → random line. Element
        // granularity does not matter to the caches, so pick a random line
        // plus a random word within it.
        let line = self.rng.below(self.lines);
        let word = self.rng.below(16);
        let a = self.base + line * 64 + word * 4;
        self.store_pending = a;
        self.has_pending = true;
        Op::Load(a)
    }

    /// Batch generation emitting whole `++` (load/store) rounds per loop
    /// turn; sequence-identical to repeated [`Self::next_op`].
    fn next_batch(&mut self, out: &mut Vec<Op>, max: usize) {
        let mut n = 0;
        while n < max {
            if self.has_pending {
                self.has_pending = false;
                if let Some(left) = &mut self.rounds_left {
                    *left -= 1;
                }
                out.push(Op::Store(self.store_pending));
                n += 1;
                continue;
            }
            if self.rounds_left == Some(0) {
                out.push(Op::Done);
                return;
            }
            let line = self.rng.below(self.lines);
            let word = self.rng.below(16);
            let a = self.base + line * 64 + word * 4;
            out.push(Op::Load(a));
            n += 1;
            if n < max {
                if let Some(left) = &mut self.rounds_left {
                    *left -= 1;
                }
                out.push(Op::Store(a));
                n += 1;
            } else {
                self.store_pending = a;
                self.has_pending = true;
            }
        }
    }

    fn mlp(&self) -> u8 {
        self.mlp
    }

    fn label(&self) -> &str {
        "CSThr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amem_sim::prelude::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::xeon20mb().scaled(0.125))
    }

    #[test]
    fn load_store_pairs_within_buffer() {
        let mut m = machine();
        let cfg = CsThreadCfg {
            buffer_bytes: 1 << 16,
            rounds: Some(100),
            ..CsThreadCfg::default()
        };
        let mut t = CsThread::new(&mut m, &cfg);
        let (lo, hi) = t.line_range();
        for _ in 0..100 {
            match (t.next_op(), t.next_op()) {
                (Op::Load(a), Op::Store(b)) => {
                    assert_eq!(a, b);
                    assert!((a >> 6) >= lo && (a >> 6) < hi);
                }
                other => panic!("expected pair, got {other:?}"),
            }
        }
        assert_eq!(t.next_op(), Op::Done);
    }

    #[test]
    fn next_batch_matches_next_op() {
        let cfg = CsThreadCfg {
            buffer_bytes: 1 << 16,
            rounds: Some(9),
            ..CsThreadCfg::default()
        };
        let mut serial_src = CsThread::new(&mut machine(), &cfg);
        let mut serial = Vec::new();
        loop {
            let op = serial_src.next_op();
            serial.push(op);
            if op == Op::Done {
                break;
            }
        }
        for batch_size in [1, 3, 7, 256] {
            let mut t = CsThread::new(&mut machine(), &cfg);
            let mut ops = Vec::new();
            while ops.last() != Some(&Op::Done) {
                let before = ops.len();
                t.next_batch(&mut ops, batch_size);
                assert!(ops.len() - before <= batch_size);
            }
            assert_eq!(ops, serial, "batch_size={batch_size}");
        }
    }

    #[test]
    fn mostly_hits_l3_not_dram() {
        // A CSThr whose buffer exceeds L2 but fits the L3 must, after
        // warm-up, hit the L3 on almost every access and use almost no
        // DRAM bandwidth: the orthogonality property of §III-D.
        let mut m = machine();
        let cfg = CsThreadCfg {
            rounds: Some(200_000),
            ..CsThreadCfg::for_machine(m.cfg())
        };
        let t = CsThread::new(&mut m, &cfg);
        let r = m.run(
            vec![Job::primary(Box::new(t), CoreId::new(0, 0))],
            RunLimit::default(),
        );
        let c = &r.jobs[0].counters;
        // Random single-word touches: L1/L2 nearly always miss...
        assert!(c.l2_miss_rate() > 0.8, "l2 mr {}", c.l2_miss_rate());
        // ...but the L3 holds the whole buffer: misses only during warm-up.
        assert!(
            c.l3_miss_rate() < 0.10,
            "CSThr should be L3-resident, mr={:.3}",
            c.l3_miss_rate()
        );
    }

    #[test]
    fn occupies_its_buffer_in_the_l3() {
        let mut m = machine();
        let cfg = CsThreadCfg {
            rounds: Some(300_000),
            ..CsThreadCfg::for_machine(m.cfg())
        };
        let t = CsThread::new(&mut m, &cfg);
        let range = t.line_range();
        let buffer_lines = range.1 - range.0;
        let mut lim = RunLimit::default();
        lim.watch_ranges.push(range);
        let r = m.run(vec![Job::primary(Box::new(t), CoreId::new(0, 0))], lim);
        let resident = r.sockets[0].watched_occupancy[0];
        assert!(
            resident as f64 > 0.95 * buffer_lines as f64,
            "only {resident}/{buffer_lines} lines resident"
        );
    }

    #[test]
    fn distinct_seeds_walk_differently() {
        let mut m = machine();
        let c1 = CsThreadCfg::default().with_seed(1);
        let c2 = CsThreadCfg::default().with_seed(2);
        let mut t1 = CsThread::new(
            &mut m,
            &CsThreadCfg {
                buffer_bytes: 1 << 16,
                ..c1
            },
        );
        let mut t2 = CsThread::new(
            &mut m,
            &CsThreadCfg {
                buffer_bytes: 1 << 16,
                ..c2
            },
        );
        let a1: Vec<Op> = (0..16).map(|_| t1.next_op()).collect();
        let a2: Vec<Op> = (0..16).map(|_| t2.next_op()).collect();
        // Same base offsets would make ops equal; different seeds must not.
        let offs = |v: &[Op], base: u64| -> Vec<u64> {
            v.iter()
                .filter_map(|o| match o {
                    Op::Load(a) => Some(a - base),
                    _ => None,
                })
                .collect()
        };
        let (b1, _) = t1.line_range();
        let (b2, _) = t2.line_range();
        assert_ne!(offs(&a1, b1 << 6), offs(&a2, b2 << 6));
    }
}
