//! BWThr: the memory-bandwidth interference thread (paper Fig. 2).
//!
//! The paper's C skeleton:
//!
//! ```c
//! long long int* buf_0 = malloc(sizeof(long long int) * bufSize);
//! ...
//! long long int* buf_numBufs = malloc(sizeof(long long int) * bufSize);
//! for (int i = 0; 1; i++) {
//!     buf_0[identity(largePrime * i) % bufSize]++;
//!     ...
//!     buf_numBufs[identity(largePrime * i) % bufSize]++;
//! }
//! ```
//!
//! Design points carried over faithfully:
//!
//! * **Large-prime stride** — successive accesses to one buffer are
//!   `largePrime mod bufSize` elements apart, so the revisit interval of
//!   any location is maximal (no short-term reuse) while the stride stays
//!   constant (prefetchable, per §II-A).
//! * **Many buffers (44)** — the paper interleaves accesses across many
//!   buffers so the hardware can keep several misses in flight despite the
//!   `identity()` call blocking compiler-level unrolling. In the simulator
//!   this shows up as the stream's MLP budget.
//! * **Total footprint slightly exceeding the L3** — 44 × 520 KB ≈ 22.9 MB
//!   against a 20 MB L3, so accesses cannot settle into the cache.
//!
//! The increment (`++`) is a load followed by a store to the same line.

use amem_sim::machine::Machine;
use amem_sim::stream::{AccessStream, Op};
use serde::{Deserialize, Serialize};

/// The large prime of the paper's stride. Any prime much larger than the
/// buffer length works; this one is `primes.utm.edu`'s 10000th prime.
pub const LARGE_PRIME: u64 = 104_729;

/// Configuration of one BWThr.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BwThreadCfg {
    /// Number of buffers walked round-robin (paper: 44).
    pub n_buffers: usize,
    /// Bytes per buffer (paper: 520 KB of `long long int`s).
    pub buffer_bytes: u64,
    /// In-flight miss budget (models the multi-buffer overlap).
    pub mlp: u8,
    /// If set, the thread finishes after this many passes over all
    /// buffers ("iterations over its main loop", used as the primary
    /// workload in the paper's Fig. 7).
    pub iterations: Option<u64>,
}

impl Default for BwThreadCfg {
    fn default() -> Self {
        Self {
            n_buffers: 44,
            buffer_bytes: 520 << 10,
            mlp: 4,
            iterations: None,
        }
    }
}

impl BwThreadCfg {
    /// Scale the 520 KB-per-buffer footprint to a machine whose caches
    /// were shrunk with [`amem_sim::MachineConfig::scaled`]: the total
    /// footprint keeps the same ratio to the L3 (≈1.15×), which is the
    /// property that makes every access miss.
    pub fn for_machine(cfg: &amem_sim::MachineConfig) -> Self {
        let d = Self::default();
        let full_l3 = 20u64 << 20;
        let ratio = cfg.l3.size_bytes as f64 / full_l3 as f64;
        Self {
            buffer_bytes: ((d.buffer_bytes as f64 * ratio) as u64).max(4096),
            ..d
        }
    }

    /// Total bytes touched by one thread.
    pub fn footprint(&self) -> u64 {
        self.n_buffers as u64 * self.buffer_bytes
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// One bandwidth interference thread, as a simulator stream.
///
/// The stride walks whole cache lines (the paper strides 8-byte elements;
/// at line granularity the walk is purely cyclic with a period of the
/// entire footprint, so under LRU *every* revisit distance exceeds the
/// cache — the property the prime stride is there to provide).
pub struct BwThread {
    bases: Vec<u64>,
    /// Lines per buffer.
    lines: u64,
    /// Stride in lines, reduced mod `lines` and forced coprime so the
    /// walk covers every line before repeating.
    stride: u64,
    /// Current line offset (equals `largePrime * i % lines`).
    offset: u64,
    /// Next buffer to touch this round.
    buf: usize,
    /// Whether the pending op is the store half of the `++`.
    store_pending: bool,
    iterations_left: Option<u64>,
    mlp: u8,
}

impl BwThread {
    /// Allocate the thread's buffers on `machine` and build the stream.
    pub fn new(machine: &mut Machine, cfg: &BwThreadCfg) -> Self {
        assert!(cfg.n_buffers > 0 && cfg.buffer_bytes >= 64);
        let bases = (0..cfg.n_buffers)
            .map(|_| machine.alloc(cfg.buffer_bytes))
            .collect();
        let lines = cfg.buffer_bytes / 64;
        let mut stride = LARGE_PRIME % lines;
        while stride == 0 || gcd(stride, lines) != 1 {
            stride = (stride + 1) % lines.max(2);
        }
        Self {
            bases,
            lines,
            stride,
            offset: 0,
            buf: 0,
            store_pending: false,
            iterations_left: cfg.iterations,
            mlp: cfg.mlp,
        }
    }

    /// Byte-address ranges of the buffers (for L3 occupancy watching).
    pub fn line_ranges(&self, buffer_bytes: u64) -> Vec<(u64, u64)> {
        self.bases
            .iter()
            .map(|&b| (b >> 6, (b + buffer_bytes) >> 6))
            .collect()
    }

    #[inline]
    fn addr(&self) -> u64 {
        self.bases[self.buf] + self.offset * 64
    }

    /// Advance to the next buffer; after the last, bump `i` (one full
    /// round-robin pass = one paper-loop iteration).
    #[inline]
    fn advance(&mut self) {
        self.buf += 1;
        if self.buf == self.bases.len() {
            self.buf = 0;
            self.offset += self.stride;
            if self.offset >= self.lines {
                self.offset -= self.lines;
            }
            if let Some(left) = &mut self.iterations_left {
                *left -= 1;
            }
        }
    }
}

impl AccessStream for BwThread {
    fn next_op(&mut self) -> Op {
        if self.store_pending {
            // Second half of `buf[idx]++`.
            self.store_pending = false;
            let a = self.addr();
            self.advance();
            return Op::Store(a);
        }
        if self.iterations_left == Some(0) {
            return Op::Done;
        }
        self.store_pending = true;
        Op::Load(self.addr())
    }

    /// Batch generation emitting whole `++` (load/store) pairs per loop
    /// turn; sequence-identical to repeated [`Self::next_op`].
    fn next_batch(&mut self, out: &mut Vec<Op>, max: usize) {
        let mut n = 0;
        while n < max {
            if self.store_pending {
                self.store_pending = false;
                let a = self.addr();
                self.advance();
                out.push(Op::Store(a));
                n += 1;
                continue;
            }
            if self.iterations_left == Some(0) {
                out.push(Op::Done);
                return;
            }
            let a = self.addr();
            out.push(Op::Load(a));
            n += 1;
            if n < max {
                self.advance();
                out.push(Op::Store(a));
                n += 1;
            } else {
                self.store_pending = true;
            }
        }
    }

    fn mlp(&self) -> u8 {
        self.mlp
    }

    fn label(&self) -> &str {
        "BWThr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amem_sim::prelude::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::xeon20mb().scaled(0.125))
    }

    #[test]
    fn emits_load_store_pairs_with_prime_stride() {
        let mut m = machine();
        let cfg = BwThreadCfg {
            n_buffers: 2,
            buffer_bytes: 4096,
            mlp: 4,
            iterations: Some(3),
        };
        let mut t = BwThread::new(&mut m, &cfg);
        let lines = 4096 / 64;
        let stride = LARGE_PRIME % lines;
        // Round 0: buffer 0 then buffer 1 at offset 0.
        let l0 = t.next_op();
        let s0 = t.next_op();
        match (l0, s0) {
            (Op::Load(a), Op::Store(b)) => assert_eq!(a, b),
            other => panic!("expected load/store pair, got {other:?}"),
        }
        let l1 = t.next_op();
        let _s1 = t.next_op();
        // Round 1: offset advanced by the reduced prime stride (64 lines
        // is a power of two and the prime is odd, so no coprime fixup).
        let l2 = t.next_op();
        if let (Op::Load(a0), Op::Load(a2)) = (l0, l2) {
            assert_eq!(a2 - a0, stride * 64);
        } else {
            panic!("unexpected ops {l0:?} {l1:?}");
        }
    }

    #[test]
    fn next_batch_matches_next_op() {
        let cfg = BwThreadCfg {
            n_buffers: 3,
            buffer_bytes: 4096,
            mlp: 4,
            iterations: Some(5),
        };
        let mut serial_src = BwThread::new(&mut machine(), &cfg);
        let mut serial = Vec::new();
        loop {
            let op = serial_src.next_op();
            serial.push(op);
            if op == Op::Done {
                break;
            }
        }
        for batch_size in [1, 3, 7, 256] {
            let mut t = BwThread::new(&mut machine(), &cfg);
            let mut ops = Vec::new();
            while ops.last() != Some(&Op::Done) {
                let before = ops.len();
                t.next_batch(&mut ops, batch_size);
                assert!(ops.len() - before <= batch_size);
            }
            assert_eq!(ops, serial, "batch_size={batch_size}");
        }
    }

    #[test]
    fn finite_thread_terminates_after_iterations() {
        let mut m = machine();
        let cfg = BwThreadCfg {
            n_buffers: 4,
            buffer_bytes: 4096,
            mlp: 2,
            iterations: Some(10),
        };
        let t = BwThread::new(&mut m, &cfg);
        let r = m.run(
            vec![Job::primary(Box::new(t), CoreId::new(0, 0))],
            RunLimit::default(),
        );
        let c = &r.jobs[0].counters;
        assert!(r.jobs[0].done);
        // 10 iterations × 4 buffers = 40 load/store pairs.
        assert_eq!(c.loads, 40);
        assert_eq!(c.stores, 40);
    }

    #[test]
    fn nearly_every_access_misses_the_l3() {
        // Footprint ≈ 1.15× L3: after warm-up, accesses must miss the L3
        // almost always (that is BWThr's defining property).
        let mut m = machine();
        let cfg = BwThreadCfg {
            iterations: Some(4000),
            ..BwThreadCfg::for_machine(m.cfg())
        };
        let t = BwThread::new(&mut m, &cfg);
        let r = m.run(
            vec![Job::primary(Box::new(t), CoreId::new(0, 0))],
            RunLimit::default(),
        );
        let c = &r.jobs[0].counters;
        // Alone, BWThr's 1.15×L3 footprint misses on roughly half its
        // accesses under the L3's adaptive insertion (its own lines are
        // its only competition); under any co-runner the rate rises
        // sharply (see calibrate::bwthrs_saturate_the_channel).
        assert!(
            c.l3_miss_rate() > 0.45,
            "BWThr L3 miss rate {:.3} too low",
            c.l3_miss_rate()
        );
        // Every L2 access misses: the prime stride never revisits a line
        // within the private caches' reach.
        assert!(c.l2_miss_rate() > 0.95, "l2 mr {:.3}", c.l2_miss_rate());
    }

    #[test]
    fn footprint_scales_with_machine() {
        let full = BwThreadCfg::for_machine(&MachineConfig::xeon20mb());
        let eighth = BwThreadCfg::for_machine(&MachineConfig::xeon20mb().scaled(0.125));
        assert_eq!(full.buffer_bytes, 520 << 10);
        assert!(eighth.footprint() < full.footprint() / 6);
        // Still exceeds the scaled L3.
        let l3 = MachineConfig::xeon20mb().scaled(0.125).l3.size_bytes;
        assert!(eighth.footprint() as f64 > 1.05 * l3 as f64);
    }
}
