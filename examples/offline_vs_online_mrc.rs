//! Two instruments, one miss-ratio curve: compare the *offline* Mattson
//! stack-distance analysis of a recorded address trace against the
//! *online* active-measurement estimate (CSThr interference + Eq. 4
//! inversion). Their agreement is the strongest validation of the paper's
//! methodology this repository offers — it recovers trace-quality
//! information without ever collecting a trace.
//!
//! ```sh
//! cargo run --release --example offline_vs_online_mrc
//! ```

use active_mem::core::mrc::MissRatioCurve;
use active_mem::core::platform::{ProbeWorkload, SimPlatform};
use active_mem::core::report::sparkline;
use active_mem::core::sweep::run_sweep;
use active_mem::core::{CapacityMap, Executor};
use active_mem::interfere::InterferenceKind;
use active_mem::probes::dist::AccessDist;
use active_mem::probes::probe::{ProbeCfg, ProbeStream};
use active_mem::sim::machine::Machine;
use active_mem::sim::prelude::*;
use active_mem::sim::trace::{Trace, TraceEvent, TraceRecorder};

fn main() {
    let cfg = MachineConfig::xeon20mb().scaled(0.125);
    let dist = AccessDist::Exponential { rate: 6.0 };
    let ratio = 2.5;

    // --- offline: record the probe's address stream, stack-analyze it ---
    println!("recording the probe's address trace...");
    let mut m = Machine::new(cfg.clone());
    let pcfg = ProbeCfg::for_machine(&cfg, dist, ratio, 1);
    let mut rec = TraceRecorder::new(ProbeStream::new(&mut m, &pcfg));
    let mut trace = Trace::default();
    let mut warm_refs = 0usize;
    let mut marked = false;
    loop {
        match rec.next_op() {
            Op::Done => break,
            Op::Mark => marked = true,
            Op::Load(a) => {
                trace.events.push(TraceEvent::Load(a));
                if !marked {
                    warm_refs += 1;
                }
            }
            _ => {}
        }
    }
    println!(
        "  {} references over {} distinct lines",
        trace.references(),
        trace.footprint_lines()
    );

    // --- online: interference sweep + Eq. 4 inversion -------------------
    println!("running the active-measurement sweep (0-5 CSThrs)...");
    let exec = Executor::memory_only(SimPlatform::new(cfg.clone()));
    let w = ProbeWorkload(pcfg);
    let sweep = run_sweep(&exec, &w, 1, InterferenceKind::Storage, 5).expect("sweep");
    let cmap = CapacityMap::paper_xeon20mb(&cfg);
    let online = MissRatioCurve::from_sweep(&sweep, &cmap);

    println!(
        "\n{:>14} {:>10} {:>10} {:>8}",
        "capacity (MB)", "offline", "online", "delta"
    );
    let mut offline_vals = Vec::new();
    let mut online_vals = Vec::new();
    for p in &online.points {
        let cap_lines = (p.capacity_bytes / 64.0) as u64;
        let offline = trace.lru_miss_ratio_after(warm_refs, cap_lines);
        offline_vals.push(offline);
        online_vals.push(p.miss_rate);
        println!(
            "{:>14.2} {:>10.3} {:>10.3} {:>+8.3}",
            p.capacity_bytes / (1 << 20) as f64,
            offline,
            p.miss_rate,
            p.miss_rate - offline
        );
    }
    println!("\n  offline MRC: [{}]", sparkline(&offline_vals));
    println!("  online  MRC: [{}]", sparkline(&online_vals));
    if let Some(fit) = online.fit_power_law() {
        println!(
            "  online power-law fit: miss_rate ∝ C^-{:.2} (R² = {:.3}) — \
             Hartstein's rule says ~0.5 for typical codes",
            fit.alpha, fit.r_squared
        );
    }
}
