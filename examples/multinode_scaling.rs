//! Scale-out straggling: per-node jitter (from interference or OS noise)
//! compounds with node count, because a bulk-synchronous job finishes
//! with its slowest node — the cluster-level face of the paper's §IV
//! noise discussion.
//!
//! ```sh
//! cargo run --release --example multinode_scaling
//! ```

use active_mem::core::multinode::run_nodes;
use active_mem::core::noise::{NoiseCfg, NoisyStream};
use active_mem::core::report::sparkline;
use active_mem::sim::prelude::*;
use active_mem::sim::stream::ScriptStream;

fn main() {
    let cfg = MachineConfig::xeon20mb().scaled(0.0625);
    let noise = NoiseCfg {
        rate: 2e-3,
        mean_cycles: 20_000.0,
        seed: 3,
    };
    println!(
        "per-rank noise: rate {:.0e}/op, mean bubble {:.0} cycles\n",
        noise.rate, noise.mean_cycles
    );
    println!(
        "{:>6} {:>12} {:>12} {:>11}",
        "nodes", "mean (ms)", "job (ms)", "straggle"
    );
    let mut jobs = Vec::new();
    for nodes in [1usize, 2, 4, 8, 16, 32] {
        let r = run_nodes(&cfg, nodes, |n, _m| {
            let work = ScriptStream::new(vec![Op::Compute(50); 4000]);
            vec![Job::primary(
                Box::new(NoisyStream::new(work, noise, n as u64 + 1)),
                CoreId::new(0, 0),
            )]
        });
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>+10.1}%",
            nodes,
            r.mean_seconds * 1e3,
            r.job_seconds * 1e3,
            r.imbalance * 100.0
        );
        jobs.push(r.job_seconds);
    }
    println!("\njob time vs node count: [{}]", sparkline(&jobs));
    println!(
        "The mean per-node time barely moves; the job time climbs with the \
         max of more noise draws. This is why the paper's interference \
         measurements on parallel applications show amplified sensitivity."
    );
}
