//! Run the paper's interference threads on the *host* machine — the
//! deployable form of the tool. This hammers real memory for about a
//! second; on a shared machine expect noisy numbers.
//!
//! ```sh
//! cargo run --release --example native_interference
//! ```

use std::time::Duration;

use active_mem::interfere::native::{spawn_bw, spawn_cs};
use active_mem::interfere::{BwThreadCfg, CsThreadCfg};

fn main() {
    println!("spawning 1 native BWThr (44 x 520 KB buffers, prime stride)...");
    let bw = spawn_bw(1, &BwThreadCfg::default());
    std::thread::sleep(Duration::from_millis(500));
    let stats = bw.stop();
    for s in &stats {
        println!(
            "  BWThr: {} loop iterations in {:.3}s -> ~{:.2} GB/s of line traffic",
            s.rounds,
            s.secs,
            s.gbs()
        );
    }

    println!("spawning 2 native CSThrs (4 MB random-touch buffers)...");
    let cs = spawn_cs(2, &CsThreadCfg::default());
    std::thread::sleep(Duration::from_millis(500));
    let stats = cs.stop();
    for (i, s) in stats.iter().enumerate() {
        println!(
            "  CSThr[{i}]: {} read+add+write rounds in {:.3}s ({:.1} ns/round)",
            s.rounds,
            s.secs,
            s.secs * 1e9 / s.rounds as f64
        );
    }
    println!(
        "\nTo measure a real application: start it, pin these threads to\n\
         spare cores of the same socket (e.g. with taskset), and record the\n\
         application's slowdown at each interference level — the simulator\n\
         drivers in amem-core show the full analysis pipeline."
    );
}
