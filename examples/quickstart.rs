//! Quickstart: measure how much shared cache and memory bandwidth MCB
//! uses, with the paper's Active Measurement methodology.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use active_mem::core::estimate::{bandwidth_use_per_process, storage_use_per_process};
use active_mem::core::platform::{McbWorkload, SimPlatform};
use active_mem::core::sweep::run_sweep;
use active_mem::core::{BandwidthMap, CapacityMap, Executor};
use active_mem::interfere::InterferenceKind;
use active_mem::miniapps::McbCfg;
use active_mem::sim::MachineConfig;

fn main() {
    // A shrunken Xeon20MB (paper Table I at 1/8 size) keeps this example
    // fast; pass-through of every ratio makes the numbers scale-invariant.
    let machine = MachineConfig::xeon20mb().scaled(0.125);
    let l3_mb = machine.l3.size_bytes as f64 / (1 << 20) as f64;
    println!("machine: {} (L3 {l3_mb:.2} MB/socket)", machine.name);

    // The executor caches measurements: both sweeps share one baseline
    // simulation, and re-running the example hits the in-memory cache.
    let executor = Executor::memory_only(SimPlatform::new(machine.clone()));
    let workload = McbWorkload(McbCfg::new(&machine, 20_000));
    let ranks_per_socket = 2;

    // 1. Sweep interference levels: k CSThrs / k BWThrs on the free cores.
    println!("sweeping storage interference (CSThr)...");
    let storage = run_sweep(
        &executor,
        &workload,
        ranks_per_socket,
        InterferenceKind::Storage,
        6,
    )
    .expect("storage sweep");
    println!("sweeping bandwidth interference (BWThr)...");
    let bandwidth = run_sweep(
        &executor,
        &workload,
        ranks_per_socket,
        InterferenceKind::Bandwidth,
        2,
    )
    .expect("bandwidth sweep");
    for p in &storage.points {
        println!(
            "  {} CSThr: {:.3} ms  (+{:.1}%)",
            p.count,
            p.seconds * 1e3,
            p.degradation_pct
        );
    }
    for p in &bandwidth.points {
        println!(
            "  {} BWThr: {:.3} ms  (+{:.1}%)",
            p.count,
            p.seconds * 1e3,
            p.degradation_pct
        );
    }

    // 2. Calibrate what each interference level leaves available. (The
    //    probe-based calibration is the accurate-but-slow path; here the
    //    paper's published ladder keeps the quickstart quick.)
    let cmap = CapacityMap::paper_xeon20mb(&machine);
    let bmap = BandwidthMap::calibrate(&machine);

    // 3. Turn the degradation knees into per-process resource use.
    let s =
        storage_use_per_process(&storage, &cmap, ranks_per_socket, 3.0).expect("storage estimate");
    let b = bandwidth_use_per_process(&bandwidth, &bmap, ranks_per_socket, 3.0)
        .expect("bandwidth estimate");
    println!(
        "\neach MCB process actively uses {:.2}-{:.2} MB of shared cache{}",
        s.lo / (1 << 20) as f64,
        s.hi / (1 << 20) as f64,
        if s.bracketed { "" } else { " (lower bound)" }
    );
    println!(
        "and {:.2}-{:.2} GB/s of memory bandwidth{}",
        b.lo,
        b.hi,
        if b.bracketed { "" } else { " (lower bound)" }
    );
}
