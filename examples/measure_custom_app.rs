//! Measure a *custom* application's memory-resource consumption.
//!
//! Anything that implements `AccessStream` can be measured: here we write
//! a small in-memory key-value scan (hash-probe-like random lookups over a
//! table, with a hot index) and ask the Active Measurement machinery how
//! much shared cache it effectively uses.
//!
//! ```sh
//! cargo run --release --example measure_custom_app
//! ```

use active_mem::core::estimate::storage_use_per_process;
use active_mem::core::platform::{SimPlatform, Workload};
use active_mem::core::sweep::run_sweep;
use active_mem::core::{CapacityMap, Executor};
use active_mem::interfere::InterferenceKind;
use active_mem::sim::cluster::RankMap;
use active_mem::sim::machine::Machine;
use active_mem::sim::prelude::*;

/// A toy key-value store workload: a hot index (always resident) plus a
/// larger table probed at random; ~25 cycles of "comparison" per lookup.
struct KvScan {
    index_base: u64,
    index_lines: u64,
    table_base: u64,
    table_lines: u64,
    rng: Xoshiro256,
    remaining: u64,
    warm: u64,
    marked: bool,
    pending: u8,
}

impl KvScan {
    fn new(machine: &mut Machine, index_bytes: u64, table_bytes: u64, lookups: u64) -> Self {
        Self {
            index_base: machine.alloc(index_bytes),
            index_lines: index_bytes / 64,
            table_base: machine.alloc(table_bytes),
            table_lines: table_bytes / 64,
            rng: Xoshiro256::seed_from_u64(0xCAFE),
            remaining: lookups,
            warm: lookups / 2,
            marked: false,
            pending: 0,
        }
    }
}

impl AccessStream for KvScan {
    fn next_op(&mut self) -> Op {
        match self.pending {
            1 => {
                // Table probe after the index hop.
                self.pending = 2;
                let l = self.rng.below(self.table_lines);
                Op::Load(self.table_base + l * 64)
            }
            2 => {
                self.pending = 0;
                Op::Compute(25)
            }
            _ => {
                if self.warm > 0 {
                    self.warm -= 1;
                } else if !self.marked {
                    self.marked = true;
                    return Op::Mark;
                } else if self.remaining == 0 {
                    return Op::Done;
                } else {
                    self.remaining -= 1;
                }
                self.pending = 1;
                let l = self.rng.below(self.index_lines);
                Op::Load(self.index_base + l * 64)
            }
        }
    }

    fn mlp(&self) -> u8 {
        2
    }

    fn label(&self) -> &str {
        "kv-scan"
    }
}

/// Wrap the stream as a single-rank workload.
struct KvWorkload {
    index_bytes: u64,
    table_bytes: u64,
    lookups: u64,
}

impl Workload for KvWorkload {
    fn ranks(&self) -> usize {
        1
    }
    fn build(&self, machine: &mut Machine, map: &RankMap) -> Vec<Job> {
        let core = map.core_of(0).expect("rank 0 local");
        vec![Job::primary(
            Box::new(KvScan::new(
                machine,
                self.index_bytes,
                self.table_bytes,
                self.lookups,
            )),
            core,
        )]
    }
    fn name(&self) -> String {
        "kv-scan".into()
    }
}

fn main() {
    let machine = MachineConfig::xeon20mb().scaled(0.125);
    let l3 = machine.l3.size_bytes;
    // No `cache_key` on KvWorkload, so the executor simulates every
    // point fresh — custom workloads opt in to caching by returning one.
    let executor = Executor::memory_only(SimPlatform::new(machine.clone()));

    // Working set: index = 30% of L3 (hot), table = 4x L3 (streams).
    let w = KvWorkload {
        index_bytes: (l3 as f64 * 0.3) as u64,
        table_bytes: 4 * l3,
        lookups: 6 * machine.l3.lines(),
    };

    println!("sweeping CSThr interference against the kv-scan...");
    let sweep = run_sweep(&executor, &w, 1, InterferenceKind::Storage, 5).expect("sweep");
    for p in &sweep.points {
        println!(
            "  {} CSThr: {:.3} ms (+{:.1}%), L3 miss rate {:.3}",
            p.count,
            p.seconds * 1e3,
            p.degradation_pct,
            p.l3_miss_rate
        );
    }

    let cmap = CapacityMap::paper_xeon20mb(&machine);
    // A streaming-heavy app is mildly slowed by *any* interference (its
    // misses queue behind the intruder), so use a wider noise tolerance
    // to find the capacity knee proper.
    let iv = storage_use_per_process(&sweep, &cmap, 1, 5.0)
        .expect("sweep has enough points to estimate");
    println!(
        "\nkv-scan actively uses {:.2}-{:.2} MB of the {:.2} MB L3",
        iv.lo / (1 << 20) as f64,
        iv.hi / (1 << 20) as f64,
        l3 as f64 / (1 << 20) as f64,
    );
    println!(
        "(its index is {:.2} MB; the table is measured as bandwidth, not storage — \
         exactly the distinction the paper's methodology draws)",
        w.index_bytes as f64 / (1 << 20) as f64
    );
}
