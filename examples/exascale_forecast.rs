//! Predict application performance on future memory-starved machines —
//! the paper's motivating scenario: "next-generation Exascale systems may
//! provide one or two orders of magnitude less memory capacity and
//! bandwidth per core" (§I).
//!
//! ```sh
//! cargo run --release --example exascale_forecast
//! ```

use active_mem::core::platform::{LuleshWorkload, SimPlatform};
use active_mem::core::predict::{predict_combined, DegradationModel, HypotheticalMachine};
use active_mem::core::sweep::run_sweep;
use active_mem::core::{BandwidthMap, CapacityMap, Executor};
use active_mem::interfere::InterferenceKind;
use active_mem::miniapps::LuleshCfg;
use active_mem::sim::MachineConfig;

fn main() {
    let machine = MachineConfig::xeon20mb().scaled(0.125);
    let executor = Executor::memory_only(SimPlatform::new(machine.clone()));
    let edge = LuleshCfg::scaled_edge(&machine, 28);
    let workload = LuleshWorkload(LuleshCfg::new(edge));

    println!("measuring Lulesh 28^3-equivalent under interference sweeps...");
    let storage =
        run_sweep(&executor, &workload, 2, InterferenceKind::Storage, 6).expect("storage sweep");
    let bandwidth = run_sweep(&executor, &workload, 2, InterferenceKind::Bandwidth, 2)
        .expect("bandwidth sweep");

    let cmap = CapacityMap::paper_xeon20mb(&machine);
    let bmap = BandwidthMap::calibrate(&machine);
    let smodel = DegradationModel::from_storage_sweep(&storage, &cmap);
    let bmodel = DegradationModel::from_bandwidth_sweep(&bandwidth, &bmap);
    let baseline = storage.baseline_seconds().expect("sweep has a baseline");
    println!("baseline: {:.3} ms\n", baseline * 1e3);

    println!(
        "{:<28} {:>14} {:>10}",
        "hypothetical machine", "predicted", "slowdown"
    );
    for (name, l3_frac, bw_frac) in [
        ("today", 1.0, 1.0),
        ("half the cache", 0.5, 1.0),
        ("half the bandwidth", 1.0, 0.5),
        ("exascale-ish (1/4, 1/2)", 0.25, 0.5),
        ("worst case (1/8, 1/4)", 0.125, 0.25),
    ] {
        let hyp = HypotheticalMachine {
            l3_bytes: machine.l3.size_bytes as f64 * l3_frac,
            bw_gbs: bmap.total_gbs * bw_frac,
        };
        let t = predict_combined(&smodel, &bmodel, &hyp, baseline);
        println!("{:<28} {:>11.3} ms {:>9.2}x", name, t * 1e3, t / baseline);
    }
    println!(
        "\nPredictions below the most constrained measured point are lower \
         bounds (the curves are clamped, not extrapolated)."
    );
}
