//! Co-scheduling advisor: the paper's "more intelligent work scheduling"
//! use case (§IV). Measure two applications' per-process resource use,
//! then decide whether they can share a socket without hurting each other
//! — the same question Bubble-Up/Bubble-Flux answer for datacenters, but
//! decomposed per resource as only Active Measurement can.
//!
//! ```sh
//! cargo run --release --example coschedule_advisor
//! ```

use active_mem::core::estimate::{
    bandwidth_use_per_process, storage_use_per_process, ResourceInterval,
};
use active_mem::core::platform::{LuleshWorkload, McbWorkload, SimPlatform, Workload};
use active_mem::core::sweep::run_sweep;
use active_mem::core::{BandwidthMap, CapacityMap, Executor};
use active_mem::interfere::InterferenceKind;
use active_mem::miniapps::{LuleshCfg, McbCfg};
use active_mem::sim::MachineConfig;

struct Profile {
    name: String,
    storage: ResourceInterval,
    bandwidth: ResourceInterval,
}

fn profile(
    executor: &Executor,
    w: &dyn Workload,
    cmap: &CapacityMap,
    bmap: &BandwidthMap,
) -> Profile {
    let per = 2;
    let s = run_sweep(executor, w, per, InterferenceKind::Storage, 6).expect("storage sweep");
    let b = run_sweep(executor, w, per, InterferenceKind::Bandwidth, 2).expect("bandwidth sweep");
    Profile {
        name: w.name(),
        storage: storage_use_per_process(&s, cmap, per, 3.0).expect("storage estimate"),
        bandwidth: bandwidth_use_per_process(&b, bmap, per, 3.0).expect("bandwidth estimate"),
    }
}

fn main() {
    let machine = MachineConfig::xeon20mb().scaled(0.125);
    // One executor for both profiles: each app's storage and bandwidth
    // sweeps share a cached baseline.
    let executor = Executor::memory_only(SimPlatform::new(machine.clone()));
    let cmap = CapacityMap::paper_xeon20mb(&machine);
    let bmap = BandwidthMap::calibrate(&machine);

    println!("profiling candidate applications (this runs the sweeps)...\n");
    let apps = [
        profile(
            &executor,
            &McbWorkload(McbCfg::new(&machine, 20_000)),
            &cmap,
            &bmap,
        ),
        profile(
            &executor,
            &LuleshWorkload(LuleshCfg::new(LuleshCfg::scaled_edge(&machine, 26))),
            &cmap,
            &bmap,
        ),
    ];
    let mb = (1 << 20) as f64;
    for a in &apps {
        println!(
            "{:<24} storage {:.2}-{:.2} MB/process, bandwidth {:.2}-{:.2} GB/s/process",
            a.name,
            a.storage.lo / mb,
            a.storage.hi / mb,
            a.bandwidth.lo,
            a.bandwidth.hi
        );
    }

    // Can one process of each share a socket? Conservative test: the sum
    // of upper bounds must fit the socket's resources.
    let l3 = machine.l3.size_bytes as f64;
    let bw = bmap.total_gbs;
    let st_sum = apps.iter().map(|a| a.storage.hi).sum::<f64>();
    let bw_sum = apps.iter().map(|a| a.bandwidth.hi).sum::<f64>();
    println!(
        "\nco-schedule check (1 process each on one socket):\n  storage: {:.2} of {:.2} MB -> {}",
        st_sum / mb,
        l3 / mb,
        if st_sum <= l3 { "OK" } else { "OVERCOMMITTED" }
    );
    println!(
        "  bandwidth: {:.2} of {:.2} GB/s -> {}",
        bw_sum,
        bw,
        if bw_sum <= bw { "OK" } else { "OVERCOMMITTED" }
    );
    let verdict = st_sum <= l3 && bw_sum <= bw;
    println!(
        "\nverdict: {}",
        if verdict {
            "safe to co-schedule (by upper-bound arithmetic)"
        } else {
            "do not co-schedule: at least one shared resource is oversubscribed"
        }
    );
}
