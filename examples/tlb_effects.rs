//! Explicit TLB modelling: the shipped Xeon20MB preset folds average
//! translation cost into its DRAM latency; this example switches on the
//! 64-entry DTLB model and shows where page walks actually bite — random
//! access over many pages (the paper's probe buffers!) versus streaming.
//!
//! ```sh
//! cargo run --release --example tlb_effects
//! ```

use active_mem::probes::dist::AccessDist;
use active_mem::probes::probe::{run_probe, ProbeCfg};
use active_mem::sim::tlb::TlbConfig;
use active_mem::sim::MachineConfig;

fn main() {
    let base = MachineConfig::xeon20mb().scaled(0.125);
    let mut with_tlb = base.clone();
    with_tlb.tlb = TlbConfig::xeon_dtlb();

    println!(
        "DTLB: {} entries x {} B pages = {:.0} KB reach; walk = {} cycles\n",
        with_tlb.tlb.entries,
        with_tlb.tlb.page_bytes,
        (with_tlb.tlb.entries as u64 * with_tlb.tlb.page_bytes) as f64 / 1024.0,
        with_tlb.tlb.walk_cycles
    );

    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "probe", "no TLB (ms)", "with TLB", "walks"
    );
    for (name, dist, ratio) in [
        ("uniform over 2.5x L3", AccessDist::Uniform, 2.5),
        (
            "concentrated (sigma=n/8)",
            AccessDist::Normal {
                mu: 0.5,
                sigma: 0.125,
            },
            2.5,
        ),
        (
            "zipf-like heavy head",
            AccessDist::Pareto {
                alpha: 1.2,
                x_min: 1e-4,
            },
            2.5,
        ),
    ] {
        let p0 = ProbeCfg::for_machine(&base, dist, ratio, 1);
        let r0 = run_probe(&base, &p0, |_| Vec::new());
        let p1 = ProbeCfg::for_machine(&with_tlb, dist, ratio, 1);
        let r1 = run_probe(&with_tlb, &p1, |_| Vec::new());
        println!(
            "{:<28} {:>12.3} {:>9.3} ({:+.0}%) {:>6}",
            name,
            r0.seconds * 1e3,
            r1.seconds * 1e3,
            (r1.seconds / r0.seconds - 1.0) * 100.0,
            r1.counters.tlb_misses,
        );
    }
    println!(
        "\nRandom probes over thousands of pages walk the page table on \
         nearly every access; heavy-headed patterns keep their hot pages in \
         the TLB. On the paper's real machine this cost is part of the \
         measured miss penalty — here it can be toggled and attributed."
    );
}
