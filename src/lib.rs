//! # active-mem — Active Measurement of Memory Resource Consumption
//!
//! Facade crate re-exporting the whole workspace: a reproduction of
//! *Casas & Bronevetsky, "Active Measurement of Memory Resource
//! Consumption", IPDPS 2014*.
//!
//! The paper's idea: measure how much shared-cache **storage** and memory
//! **bandwidth** an application *effectively* uses by running calibrated
//! interference threads (`CSThr`, `BWThr`) on spare cores and finding the
//! interference level at which the application starts to slow down.
//!
//! Start with [`amem_core::platform::SimPlatform`] and the `examples/`
//! directory; regenerate the paper's tables and figures with the binaries
//! in `crates/bench`.

pub use amem_conformance as conformance;
pub use amem_core as core;
pub use amem_interfere as interfere;
pub use amem_metrics as metrics;
pub use amem_miniapps as miniapps;
pub use amem_probes as probes;
pub use amem_qos as qos;
pub use amem_serve as serve;
pub use amem_sim as sim;
